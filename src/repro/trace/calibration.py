"""Every quantitative Sec. III claim, as a checkable calibration target.

The synthetic trace is only a valid substitute for the proprietary PAI
trace if the statistics the paper reports emerge from it.  This module
lists those statistics with tolerances; ``tests/trace/test_calibration.py``
asserts each one and the benchmark harness prints paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.architectures import Architecture
from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY
from ..core.hardware import pai_default_hardware
from ..core.population import (
    FeatureArrays,
    PopulationBreakdown,
    ProjectionArrays,
    batch_breakdowns,
    batch_projection_speedups,
)
from ..core.sweep import sweep_resource
from ..core.units import gbps, gigabytes
from .schema import JobRecord, features_of_type

__all__ = ["CalibrationTarget", "CALIBRATION_TARGETS", "evaluate_targets"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper statistic with its acceptance band.

    Attributes:
        name: Short identifier.
        description: Where the statistic comes from in the paper.
        paper_value: The reported value.
        tolerance: Acceptable absolute deviation of the measured value.
        measure: Computes the statistic from a trace.
    """

    name: str
    description: str
    paper_value: float
    tolerance: float
    measure: Callable[[List[JobRecord]], float]

    def check(self, jobs: List[JobRecord]) -> Dict[str, float]:
        """Measure the statistic and report pass/fail."""
        # Coerce to native Python types so the reported dict renders (and
        # caches) identically whether the measure ran through the scalar
        # or the vectorized path (np.bool_ would format as "True"/"False"
        # instead of "yes"/"no").
        measured = float(self.measure(jobs))
        return {
            "name": self.name,
            "paper": self.paper_value,
            "measured": measured,
            "tolerance": self.tolerance,
            "ok": bool(abs(measured - self.paper_value) <= self.tolerance),
        }


def _type_share(architecture: Architecture) -> Callable[[List[JobRecord]], float]:
    def measure(jobs: List[JobRecord]) -> float:
        return sum(1 for j in jobs if j.workload_type is architecture) / len(jobs)

    return measure


def _cnode_share(architecture: Architecture) -> Callable[[List[JobRecord]], float]:
    def measure(jobs: List[JobRecord]) -> float:
        total = sum(j.num_cnodes for j in jobs)
        return sum(j.num_cnodes for j in jobs if j.workload_type is architecture) / total

    return measure


def _small_model_share(jobs: List[JobRecord]) -> float:
    return sum(1 for j in jobs if j.features.weight_bytes < gigabytes(10)) / len(jobs)


def _huge_job_share(jobs: List[JobRecord]) -> float:
    return sum(1 for j in jobs if j.num_cnodes > 128) / len(jobs)


def _huge_job_resource_share(jobs: List[JobRecord]) -> float:
    total = sum(j.num_cnodes for j in jobs)
    return sum(j.num_cnodes for j in jobs if j.num_cnodes > 128) / total


def _ps_median_cnodes_above_8(jobs: List[JobRecord]) -> float:
    ps = [j.num_cnodes for j in jobs if j.workload_type is Architecture.PS_WORKER]
    return sum(1 for c in ps if c > 8) / len(ps)


# Identity-keyed memo for columnar extractions and projections: the 20
# targets share one trace list per ``evaluate_targets`` call, so the
# expensive per-population work happens once.  The key keeps the source
# list alive in the value, so a recycled ``id`` cannot alias.
_MEMO: Dict[tuple, tuple] = {}
_MEMO_MAX = 32


def _memoized(jobs: List[JobRecord], tag: tuple, compute):
    key = (id(jobs),) + tag
    hit = _MEMO.get(key)
    if hit is not None and hit[0] is jobs:
        return hit[1]
    value = compute()
    _MEMO[key] = (jobs, value)  # repro: ignore[fork-safety] per-process memo
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.pop(next(iter(_MEMO)))  # repro: ignore[fork-safety] per-process memo
    return value


def _feature_arrays(
    jobs: List[JobRecord], architecture: Architecture = None
) -> FeatureArrays:
    def compute():
        if architecture is None:
            features = [j.features for j in jobs]
        else:
            features = features_of_type(jobs, architecture)
        return FeatureArrays.from_workloads(features)

    return _memoized(jobs, ("features", architecture), compute)


def _analyze(
    jobs: List[JobRecord], architecture: Architecture = None
) -> PopulationBreakdown:
    return _memoized(
        jobs,
        ("breakdown", architecture),
        lambda: batch_breakdowns(
            _feature_arrays(jobs, architecture), pai_default_hardware()
        ),
    )


def _avg_fraction(component: str, cnode_level: bool, architecture=None):
    def measure(jobs: List[JobRecord]) -> float:
        return _analyze(jobs, architecture).average_fractions(cnode_level)[
            component
        ]

    return measure


def _ps_comm_above_80(jobs: List[JobRecord]) -> float:
    # Fig. 8(d) reports both job- and cNode-level CDFs; the >40% claim
    # matches the cNode-level curve (large jobs skew toward
    # communication), which is the resource-relevant view.
    analyzed = _analyze(jobs, Architecture.PS_WORKER)
    return analyzed.weighted_fraction_exceeding("weight", 0.80, cnode_level=True)


def _1w1g_data_above_50(jobs: List[JobRecord]) -> float:
    analyzed = _analyze(jobs, Architecture.SINGLE)
    return analyzed.weighted_fraction_exceeding("data_io", 0.50)


def _projection_results(
    jobs: List[JobRecord], target: Architecture
) -> ProjectionArrays:
    return _memoized(
        jobs,
        ("projection", target),
        lambda: batch_projection_speedups(
            _feature_arrays(jobs, Architecture.PS_WORKER),
            target,
            pai_default_hardware(),
        ),
    )


def _local_single_not_sped_up(jobs: List[JobRecord]) -> float:
    results = _projection_results(jobs, Architecture.ALLREDUCE_LOCAL)
    return float((results.single_cnode_speedup <= 1.0).mean())


def _local_throughput_not_sped_up(jobs: List[JobRecord]) -> float:
    results = _projection_results(jobs, Architecture.ALLREDUCE_LOCAL)
    return float((results.throughput_speedup <= 1.0).mean())


def _cluster_not_sped_up(jobs: List[JobRecord]) -> float:
    results = _projection_results(jobs, Architecture.ALLREDUCE_CLUSTER)
    return float((results.throughput_speedup <= 1.0).mean())


def _cluster_rescues_local_failures(jobs: List[JobRecord]) -> float:
    """Among jobs not throughput-improved by Local, share improved by Cluster."""
    local = _projection_results(jobs, Architecture.ALLREDUCE_LOCAL)
    cluster = _projection_results(jobs, Architecture.ALLREDUCE_CLUSTER)
    failures = cluster.throughput_speedup[local.throughput_speedup <= 1.0]
    if failures.size == 0:
        return 0.0
    return float((failures > 1.0).mean())


def _ethernet_100g_speedup(jobs: List[JobRecord]) -> float:
    hardware = pai_default_hardware()
    features = _feature_arrays(jobs, Architecture.PS_WORKER)
    series = sweep_resource(
        features, "ethernet", [gbps(100)], hardware, PAPER_DEFAULT_EFFICIENCY
    )
    return series.points[0].average_speedup


CALIBRATION_TARGETS: List[CalibrationTarget] = [
    CalibrationTarget(
        "ps_job_share",
        "Sec. II-A2: roughly 29% of jobs use the PS architecture",
        0.29,
        0.02,
        _type_share(Architecture.PS_WORKER),
    ),
    CalibrationTarget(
        "allreduce_job_share",
        "Sec. II-A2: less than 1% of jobs use AllReduce",
        0.01,
        0.005,
        _type_share(Architecture.ALLREDUCE_LOCAL),
    ),
    CalibrationTarget(
        "ps_cnode_share",
        "Fig. 5(b): PS/Worker jobs consume 81% of cNodes",
        0.81,
        0.05,
        _cnode_share(Architecture.PS_WORKER),
    ),
    CalibrationTarget(
        "ps_jobs_above_8_cnodes",
        "Fig. 6(a): about half of PS/Worker jobs use more than 8 cNodes",
        0.50,
        0.08,
        _ps_median_cnodes_above_8,
    ),
    CalibrationTarget(
        "huge_job_share",
        "Sec. III-A: only 0.7% of workloads have more than 128 cNodes",
        0.007,
        0.004,
        _huge_job_share,
    ),
    CalibrationTarget(
        "huge_job_resource_share",
        "Sec. III-A: >128-cNode jobs consume more than 16% of resources "
        "(the paper reports a lower bound; we accept 0.16 +- 0.09)",
        0.16,
        0.09,
        _huge_job_resource_share,
    ),
    CalibrationTarget(
        "small_model_share",
        "Sec. III-D: 90% of jobs train models smaller than 10 GB",
        0.90,
        0.05,
        _small_model_share,
    ),
    CalibrationTarget(
        "weight_share_cnode_level",
        "Sec. III-D: weight/gradient traffic is ~62% of time, cNode level",
        0.62,
        0.06,
        _avg_fraction("weight", cnode_level=True),
    ),
    CalibrationTarget(
        "weight_share_job_level",
        "Fig. 7: weight/gradient traffic is ~22% of time, job level",
        0.22,
        0.05,
        _avg_fraction("weight", cnode_level=False),
    ),
    CalibrationTarget(
        "compute_bound_share_cnode_level",
        "Sec. III-D: compute-bound ops contribute ~13%, cNode level",
        0.13,
        0.05,
        _avg_fraction("compute_bound", cnode_level=True),
    ),
    CalibrationTarget(
        "memory_bound_share_cnode_level",
        "Sec. III-D: memory-bound ops contribute ~22%, cNode level",
        0.22,
        0.06,
        _avg_fraction("memory_bound", cnode_level=True),
    ),
    CalibrationTarget(
        "data_io_share_distributed",
        "Sec. III-B: input data time is ~3% for distributed workloads "
        "(approximate claim; we accept up to ~5.5%)",
        0.03,
        0.025,
        _avg_fraction("data_io", cnode_level=False, architecture=Architecture.PS_WORKER),
    ),
    CalibrationTarget(
        "data_io_share_1w1g",
        "Sec. III-B: input data time is ~10% for 1w1g workloads",
        0.10,
        0.04,
        _avg_fraction("data_io", cnode_level=False, architecture=Architecture.SINGLE),
    ),
    CalibrationTarget(
        "1w1g_data_bound_share",
        "Sec. III-B: ~5% of 1w1g jobs spend >50% of time on input I/O",
        0.05,
        0.03,
        _1w1g_data_above_50,
    ),
    CalibrationTarget(
        "ps_comm_above_80",
        "Sec. III-B: >40% of PS/Worker jobs spend >80% time communicating",
        0.43,
        0.08,
        _ps_comm_above_80,
    ),
    CalibrationTarget(
        "local_single_not_sped_up",
        "Fig. 9(a): 22.6% of PS jobs see no single-cNode speedup on "
        "AllReduce-Local",
        0.226,
        0.05,
        _local_single_not_sped_up,
    ),
    CalibrationTarget(
        "local_throughput_not_sped_up",
        "Fig. 9(a): 40.2% of PS jobs see no throughput gain on "
        "AllReduce-Local (60% are sped up)",
        0.402,
        0.06,
        _local_throughput_not_sped_up,
    ),
    CalibrationTarget(
        "cluster_not_sped_up",
        "Fig. 9(b): 32.1% of PS jobs not sped up by AllReduce-Cluster "
        "(67.9% sped up)",
        0.321,
        0.07,
        _cluster_not_sped_up,
    ),
    CalibrationTarget(
        "cluster_rescues_local_failures",
        "Fig. 9(b): 37.8% of jobs not helped by AllReduce-Local are sped "
        "up by AllReduce-Cluster",
        0.378,
        0.08,
        _cluster_rescues_local_failures,
    ),
    CalibrationTarget(
        "ethernet_100g_speedup",
        "Abstract / Fig. 11(c): 1.7x average PS/Worker speedup at 100 Gbps",
        1.70,
        0.20,
        _ethernet_100g_speedup,
    ),
]


def evaluate_targets(jobs: List[JobRecord]) -> List[Dict[str, float]]:
    """Check every calibration target against a trace.

    Each target's paper-vs-measured delta is also emitted as a
    ``trace.calibration`` obs event (warnings for out-of-band targets),
    so calibration drift is visible in the event log.
    """
    from ..obs import DEBUG, WARNING, get_obs

    obs = get_obs()
    checks = []
    with obs.metrics.time("trace.calibration"):
        for target in CALIBRATION_TARGETS:
            check = target.check(jobs)
            obs.event(
                "trace.calibration",
                level=DEBUG if check["ok"] else WARNING,
                name=check["name"],
                paper=check["paper"],
                measured=check["measured"],
                delta=check["measured"] - check["paper"],
                tolerance=check["tolerance"],
                ok=check["ok"],
            )
            if not check["ok"]:
                obs.metrics.counter("trace.calibration_failures").inc()
            checks.append(check)
    return checks
