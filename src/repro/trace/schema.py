"""Trace records: what the cluster-level characterization consumes.

A :class:`JobRecord` is one training job from the (synthetic) cluster
trace: its workload-feature tuple plus scheduling metadata.  The real
trace analyzed in Sec. III covers tens of thousands of jobs submitted
between Dec 1 2018 and Jan 20 2019; the synthetic generator reproduces
its reported marginal statistics (see :mod:`repro.trace.calibration`).

:class:`JobView` is the columns-first counterpart: the same attribute
surface, lazily backed by a columnar population
(:class:`repro.core.population.FeatureArrays`), skipping the
per-record validation the columnar constructors already performed
vectorized.  :meth:`repro.trace.columnar.ColumnarTrace.iter_views`
streams a million-job store as views in a few seconds, which is what
lets the scheduling engine replay traces the eager decoder cannot.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple, Union

from dataclasses import dataclass

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from ..core.population import FeatureArrays, FeatureView

__all__ = [
    "JobRecord",
    "JobView",
    "jobs_of_type",
    "features_of_type",
    "iter_day_groups",
]


@dataclass(frozen=True)
class JobRecord:
    """One training job in the cluster trace.

    Attributes:
        job_id: Unique id within the trace.
        features: The per-cNode workload feature tuple (Fig. 4 schema).
        submit_day: Day offset within the trace window (0-50 for the
            Dec 1 - Jan 20 window of the paper).
        user_group: Synthetic tenant label; jobs from one group share
            workload shape tendencies.
    """

    job_id: int
    features: WorkloadFeatures
    submit_day: int = 0
    user_group: str = "default"

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.submit_day < 0:
            raise ValueError("submit_day must be non-negative")

    @property
    def workload_type(self) -> Architecture:
        """The Table II workload type of this job."""
        return self.features.architecture

    @property
    def num_cnodes(self) -> int:
        return self.features.num_cnodes


class JobView:
    """A ``JobRecord``-compatible row over a columnar trace.

    Carries the scheduling metadata eagerly (three cheap scalars) and
    the feature tuple as a lazy :class:`FeatureView`; no
    ``__post_init__`` re-validation happens because the backing store
    enforced the schema invariants vectorized when the columns were
    extracted.  Equality and hashing mirror the frozen dataclass, so a
    view interoperates with records in comparisons and dict keys.
    """

    __slots__ = ("job_id", "features", "submit_day", "user_group")

    def __init__(
        self,
        job_id: int,
        features: FeatureView,
        submit_day: int,
        user_group: str,
    ) -> None:
        self.job_id = job_id
        self.features = features
        self.submit_day = submit_day
        self.user_group = user_group

    @property
    def workload_type(self) -> Architecture:
        """The Table II workload type of this job."""
        return self.features.architecture

    @property
    def num_cnodes(self) -> int:
        return self.features.num_cnodes

    def _field_values(self) -> Tuple:
        return (self.job_id, self.features, self.submit_day, self.user_group)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (JobView, JobRecord)):
            return self._field_values() == (
                other.job_id,
                other.features,
                other.submit_day,
                other.user_group,
            )
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._field_values())

    def __repr__(self) -> str:
        return (
            f"JobView(job_id={self.job_id}, submit_day={self.submit_day}, "
            f"user_group={self.user_group!r})"
        )


def jobs_of_type(
    jobs: Iterable[JobRecord], architecture: Architecture
) -> List[JobRecord]:
    """Filter a trace down to one workload type."""
    return [job for job in jobs if job.workload_type is architecture]


def features_of_type(
    jobs: Union[FeatureArrays, Iterable[JobRecord]],
    architecture: Architecture,
) -> List[WorkloadFeatures]:
    """Feature tuples of one workload type.

    Columns-first: a :class:`FeatureArrays` population yields lazy
    :class:`FeatureView` rows straight off the selected columns; an
    iterable of records falls back to the per-job attribute walk.
    """
    if isinstance(jobs, FeatureArrays):
        return list(jobs.of_architecture(architecture).iter_views())
    return [job.features for job in jobs if job.workload_type is architecture]


def iter_day_groups(
    jobs: Iterable[Union[JobRecord, JobView]],
) -> Iterator[Tuple[int, List[Union[JobRecord, JobView]]]]:
    """Group a job stream into contiguous ``(submit_day, jobs)`` runs.

    Streams: each group materializes only one day's jobs, preserving
    their order.  On a submit-day-sorted trace the runs are exactly the
    submission days -- the batching unit of both the day-batched
    scheduling engine (:mod:`repro.sched.engine`) and the serve
    replayer (:mod:`repro.serve.replay`).
    """
    day = None
    group: List[Union[JobRecord, JobView]] = []
    for job in jobs:
        if day is not None and job.submit_day != day:
            yield day, group
            group = []
        group.append(job)
        day = job.submit_day
    if group:
        yield day, group
