"""Trace records: what the cluster-level characterization consumes.

A :class:`JobRecord` is one training job from the (synthetic) cluster
trace: its workload-feature tuple plus scheduling metadata.  The real
trace analyzed in Sec. III covers tens of thousands of jobs submitted
between Dec 1 2018 and Jan 20 2019; the synthetic generator reproduces
its reported marginal statistics (see :mod:`repro.trace.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures

__all__ = ["JobRecord", "jobs_of_type", "features_of_type"]


@dataclass(frozen=True)
class JobRecord:
    """One training job in the cluster trace.

    Attributes:
        job_id: Unique id within the trace.
        features: The per-cNode workload feature tuple (Fig. 4 schema).
        submit_day: Day offset within the trace window (0-50 for the
            Dec 1 - Jan 20 window of the paper).
        user_group: Synthetic tenant label; jobs from one group share
            workload shape tendencies.
    """

    job_id: int
    features: WorkloadFeatures
    submit_day: int = 0
    user_group: str = "default"

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.submit_day < 0:
            raise ValueError("submit_day must be non-negative")

    @property
    def workload_type(self) -> Architecture:
        """The Table II workload type of this job."""
        return self.features.architecture

    @property
    def num_cnodes(self) -> int:
        return self.features.num_cnodes


def jobs_of_type(
    jobs: Iterable[JobRecord], architecture: Architecture
) -> List[JobRecord]:
    """Filter a trace down to one workload type."""
    return [job for job in jobs if job.workload_type is architecture]


def features_of_type(
    jobs: Iterable[JobRecord], architecture: Architecture
) -> List[WorkloadFeatures]:
    """Feature tuples of one workload type."""
    return [job.features for job in jobs if job.workload_type is architecture]
