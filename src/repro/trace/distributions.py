"""Parametric samplers used by the synthetic trace generator.

Thin, explicit wrappers over ``numpy.random.Generator`` so the
generator's code reads as a specification of the trace's marginal
distributions.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "lognormal",
    "loguniform",
    "beta_with_mean",
    "clipped_lognormal_int",
    "power_of_two",
]


def lognormal(rng: np.random.Generator, median: float, sigma: float) -> float:
    """Log-normal sample with the given median and log-space sigma."""
    if median <= 0:
        raise ValueError("median must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return float(rng.lognormal(mean=math.log(median), sigma=sigma))


def loguniform(rng: np.random.Generator, low: float, high: float) -> float:
    """Sample uniformly in log space over ``[low, high]``."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    return float(math.exp(rng.uniform(math.log(low), math.log(high))))


def beta_with_mean(
    rng: np.random.Generator, mean: float, concentration: float = 5.0
) -> float:
    """Beta sample parameterized by mean and concentration (a + b)."""
    if not 0 < mean < 1:
        raise ValueError("mean must be in (0, 1)")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    a = mean * concentration
    b = (1.0 - mean) * concentration
    return float(rng.beta(a, b))


def clipped_lognormal_int(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    low: int,
    high: int,
) -> int:
    """Integer-rounded log-normal sample clipped to ``[low, high]``."""
    if low > high:
        raise ValueError("low must not exceed high")
    value = int(round(lognormal(rng, median, sigma)))
    return max(low, min(high, value))


def power_of_two(rng: np.random.Generator, low_exp: int, high_exp: int) -> int:
    """A power of two with uniformly random exponent in ``[low, high]``."""
    if low_exp > high_exp:
        raise ValueError("low_exp must not exceed high_exp")
    return 1 << int(rng.integers(low_exp, high_exp + 1))
