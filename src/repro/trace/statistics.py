"""Small statistics toolkit: empirical CDFs and weighted aggregates.

Every distribution figure in the paper (Figs. 6, 8, 9, 10, 15, 16) is an
empirical CDF over the job population, sometimes cNode-weighted.  This
module provides those primitives without pulling in plotting
dependencies; the benchmark harness prints the resulting series.

Two construction paths exist:

* **batch** -- :meth:`EmpiricalCDF.from_samples` over a fully
  materialized population (the one-shot ``report`` path);
* **streaming** -- :class:`StreamingCDF`, a bounded-size mergeable
  sketch that shards of a live population update independently and
  combine on demand (the ``repro.serve`` path).  While the number of
  distinct observations stays within the sketch capacity the combined
  result is *exactly* the batch CDF; beyond that, compaction bounds the
  quantile-rank error by ~1/capacity.

:meth:`EmpiricalCDF.merge` combines already-built CDFs (weighted by
their originating sample mass) into the CDF of the union population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "EmpiricalCDF",
    "StreamingCDF",
    "fraction_below",
    "fraction_above",
    "weighted_mean",
    "weighted_fraction",
]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical (optionally weighted) cumulative distribution.

    ``values`` are sorted ascending; ``cumulative`` gives
    P(X <= values[i]) including weights.
    """

    values: Tuple[float, ...]
    cumulative: Tuple[float, ...]

    @staticmethod
    def from_samples(
        samples: Iterable[float], weights: Iterable[float] = None
    ) -> "EmpiricalCDF":
        """Build a CDF from samples with optional per-sample weights."""
        data = np.asarray(samples, dtype=float).ravel()
        if data.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        if weights is None:
            weight_array = np.ones_like(data)
        else:
            weight_array = np.asarray(weights, dtype=float).ravel()
            if weight_array.shape != data.shape:
                raise ValueError("weights must match samples in length")
            if np.any(weight_array < 0):
                raise ValueError("weights must be non-negative")
        order = np.argsort(data, kind="stable")
        sorted_values = data[order]
        cumulative = np.cumsum(weight_array[order])
        total = cumulative[-1]
        if total <= 0:
            raise ValueError("total weight must be positive")
        normalized = cumulative / total
        # The running sum can land on 1.0 +- a few ulps; pin the final
        # entry to exactly 1.0 so quantile(1.0) finds the maximum by
        # construction instead of relying on the defensive index clamp.
        normalized[-1] = 1.0
        return EmpiricalCDF(
            values=tuple(sorted_values.tolist()),
            cumulative=tuple(normalized.tolist()),
        )

    def probability_at(self, x: float) -> float:
        """P(X <= x)."""
        values = np.asarray(self.values)
        index = np.searchsorted(values, x, side="right")
        if index == 0:
            return 0.0
        return self.cumulative[index - 1]

    #: Absolute slack when matching a quantile rank against the
    #: cumulative grid.  A merged CDF re-accumulates point masses that
    #: were recovered by differencing (:meth:`point_masses`), so a grid
    #: entry that is exactly 0.5 in the batch construction can land a
    #: few ulps below it after a merge -- and ``quantile`` is a step
    #: function, so one ulp would otherwise flip the answer by a whole
    #: point mass.  The slack is far below any real rank resolution
    #: (it would take >1e9 samples to place two points this close).
    _RANK_SLACK = 1e-9

    def quantile(self, q: float) -> float:
        """Smallest value with cumulative probability >= q.

        ``q`` is matched with a tiny absolute slack
        (:data:`_RANK_SLACK`) so that CDFs rebuilt from recovered point
        masses (:meth:`merge`) agree with batch construction instead of
        flipping one point mass on floating-point rounding.
        """
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        cumulative = np.asarray(self.cumulative)
        index = int(
            np.searchsorted(cumulative, q - self._RANK_SLACK, side="left")
        )
        index = min(index, len(self.values) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """Down-sampled (value, probability) pairs for text rendering."""
        if points < 2:
            raise ValueError("points must be at least 2")
        count = len(self.values)
        if count <= points:
            return list(zip(self.values, self.cumulative))
        indices = np.linspace(0, count - 1, points).astype(int)
        return [(self.values[i], self.cumulative[i]) for i in indices]

    def point_masses(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (values, normalized weights) pairs behind this CDF.

        Recovered by differencing the cumulative series; the weights sum
        to 1.  This is the inverse of :meth:`from_samples` up to sample
        order and floating-point rounding.
        """
        cumulative = np.asarray(self.cumulative, dtype=float)
        weights = np.diff(cumulative, prepend=0.0)
        return np.asarray(self.values, dtype=float), weights

    @staticmethod
    def merge(
        cdfs: Sequence["EmpiricalCDF"],
        total_weights: Optional[Sequence[float]] = None,
    ) -> "EmpiricalCDF":
        """The CDF of the union of the populations behind ``cdfs``.

        ``total_weights`` gives the sample mass (e.g. job count or
        cNode total) each member CDF summarizes; every member is
        normalized, so without it they combine as equals.  Merging the
        per-shard CDFs of a partitioned population with their shard
        masses reproduces the whole-population CDF exactly (up to
        floating-point rounding and the pinned final 1.0).
        """
        members = list(cdfs)
        if not members:
            raise ValueError("cannot merge zero CDFs")
        if total_weights is None:
            mass = np.ones(len(members), dtype=float)
        else:
            mass = np.asarray(total_weights, dtype=float).ravel()
            if mass.shape != (len(members),):
                raise ValueError("total_weights must match cdfs in length")
            if np.any(mass <= 0):
                raise ValueError("total_weights must be positive")
        values: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        for cdf, cdf_mass in zip(members, mass):
            member_values, member_weights = cdf.point_masses()
            values.append(member_values)
            weights.append(member_weights * cdf_mass)
        return EmpiricalCDF.from_samples(
            np.concatenate(values), np.concatenate(weights)
        )


class StreamingCDF:
    """A bounded-size, mergeable sketch of a weighted distribution.

    Shards of a live population update their own sketches job by job
    (or batch by batch); :meth:`merge` combines shard sketches into one,
    and :meth:`to_cdf` renders the usual :class:`EmpiricalCDF` view.

    The sketch keeps exact ``(value, weight)`` point masses until the
    number of retained points exceeds ``capacity``; it then compacts to
    at most ``capacity`` centroids of equal cumulative mass (weighted
    means, with the exact minimum and maximum preserved).  Total weight
    and observation count are always exact; quantile ranks are exact
    below capacity and off by at most ~1/capacity after compaction.
    """

    __slots__ = ("capacity", "count", "_values", "_weights", "_retained")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 8:
            raise ValueError("capacity must be at least 8")
        self.capacity = int(capacity)
        self.count = 0
        self._values: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []
        self._retained = 0

    @property
    def total_weight(self) -> float:
        """Exact sum of all observed weights."""
        return float(sum(float(w.sum()) for w in self._weights))

    def update(self, value: float, weight: float = 1.0) -> None:
        """Observe one weighted sample."""
        self.update_many([value], [weight])

    def update_many(
        self,
        values: Iterable[float],
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        """Observe a batch of samples with optional per-sample weights."""
        data = np.asarray(values, dtype=float).ravel()
        if data.size == 0:
            return
        if weights is None:
            weight_array = np.ones_like(data)
        else:
            weight_array = np.asarray(weights, dtype=float).ravel()
            if weight_array.shape != data.shape:
                raise ValueError("weights must match values in length")
            if np.any(weight_array < 0):
                raise ValueError("weights must be non-negative")
        self.count += int(data.size)
        self._values.append(data)
        self._weights.append(weight_array)
        self._retained += int(data.size)
        if self._retained > self.capacity:
            self._compact()

    def merge(self, other: "StreamingCDF") -> "StreamingCDF":
        """A new sketch summarizing both populations."""
        merged = StreamingCDF(capacity=max(self.capacity, other.capacity))
        for source in (self, other):
            if source.count:
                values, weights = source._points()
                merged.update_many(values, weights)
        # ``update_many`` counted retained points; observations are what
        # the sketch reports, and both sides know theirs exactly.
        merged.count = self.count + other.count
        return merged

    def copy(self) -> "StreamingCDF":
        """An independent snapshot of this sketch."""
        duplicate = StreamingCDF(capacity=self.capacity)
        duplicate.count = self.count
        duplicate._values = [np.array(v, copy=True) for v in self._values]
        duplicate._weights = [np.array(w, copy=True) for w in self._weights]
        duplicate._retained = self._retained
        return duplicate

    def _points(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self._values:
            return np.empty(0), np.empty(0)
        return np.concatenate(self._values), np.concatenate(self._weights)

    def _compact(self) -> None:
        """Collapse retained points into <= capacity mass centroids."""
        values, weights = self._points()
        keep = weights > 0
        values, weights = values[keep], weights[keep]
        if values.size <= self.capacity:
            self._values, self._weights = [values], [weights]
            self._retained = int(values.size)
            return
        order = np.argsort(values, kind="stable")
        values, weights = values[order], weights[order]
        total = float(weights.sum())
        # Bucket by the rank of each point's center of mass, so every
        # centroid summarizes ~total/capacity of cumulative weight.
        centers = (np.cumsum(weights) - weights / 2.0) / total
        buckets = np.minimum(
            (centers * self.capacity).astype(np.int64), self.capacity - 1
        )
        bucket_weight = np.bincount(
            buckets, weights=weights, minlength=self.capacity
        )
        bucket_mass = np.bincount(
            buckets, weights=weights * values, minlength=self.capacity
        )
        occupied = bucket_weight > 0
        centroids = bucket_mass[occupied] / bucket_weight[occupied]
        # The distribution's support must survive compaction: pin the
        # outermost centroids to the exact observed extremes.
        centroids[0] = values[0]
        centroids[-1] = values[-1]
        self._values = [centroids]
        self._weights = [bucket_weight[occupied]]
        self._retained = int(centroids.size)

    def to_cdf(self) -> EmpiricalCDF:
        """Render the sketch as an :class:`EmpiricalCDF`."""
        if self.count == 0:
            raise ValueError("cannot build a CDF from zero samples")
        values, weights = self._points()
        return EmpiricalCDF.from_samples(values, weights)

    def quantile(self, q: float) -> float:
        """Smallest sketched value with cumulative probability >= q."""
        return self.to_cdf().quantile(q)


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    if not samples:
        raise ValueError("samples must be non-empty")
    return sum(1 for s in samples if s < threshold) / len(samples)


def fraction_above(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``."""
    if not samples:
        raise ValueError("samples must be non-empty")
    return sum(1 for s in samples if s > threshold) / len(samples)


def weighted_mean(samples: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean."""
    if len(samples) != len(weights):
        raise ValueError("samples and weights must match in length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return float(sum(s * w for s, w in zip(samples, weights)) / total)


def weighted_fraction(
    samples: Sequence[float],
    weights: Sequence[float],
    predicate,
) -> float:
    """Weighted fraction of samples satisfying ``predicate``."""
    if len(samples) != len(weights):
        raise ValueError("samples and weights must match in length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return float(
        sum(w for s, w in zip(samples, weights) if predicate(s)) / total
    )
