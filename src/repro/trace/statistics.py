"""Small statistics toolkit: empirical CDFs and weighted aggregates.

Every distribution figure in the paper (Figs. 6, 8, 9, 10, 15, 16) is an
empirical CDF over the job population, sometimes cNode-weighted.  This
module provides those primitives without pulling in plotting
dependencies; the benchmark harness prints the resulting series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "EmpiricalCDF",
    "fraction_below",
    "fraction_above",
    "weighted_mean",
    "weighted_fraction",
]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical (optionally weighted) cumulative distribution.

    ``values`` are sorted ascending; ``cumulative`` gives
    P(X <= values[i]) including weights.
    """

    values: Tuple[float, ...]
    cumulative: Tuple[float, ...]

    @staticmethod
    def from_samples(
        samples: Iterable[float], weights: Iterable[float] = None
    ) -> "EmpiricalCDF":
        """Build a CDF from samples with optional per-sample weights."""
        data = np.asarray(samples, dtype=float).ravel()
        if data.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        if weights is None:
            weight_array = np.ones_like(data)
        else:
            weight_array = np.asarray(weights, dtype=float).ravel()
            if weight_array.shape != data.shape:
                raise ValueError("weights must match samples in length")
            if np.any(weight_array < 0):
                raise ValueError("weights must be non-negative")
        order = np.argsort(data, kind="stable")
        sorted_values = data[order]
        cumulative = np.cumsum(weight_array[order])
        total = cumulative[-1]
        if total <= 0:
            raise ValueError("total weight must be positive")
        normalized = cumulative / total
        # The running sum can land on 1.0 +- a few ulps; pin the final
        # entry to exactly 1.0 so quantile(1.0) finds the maximum by
        # construction instead of relying on the defensive index clamp.
        normalized[-1] = 1.0
        return EmpiricalCDF(
            values=tuple(sorted_values.tolist()),
            cumulative=tuple(normalized.tolist()),
        )

    def probability_at(self, x: float) -> float:
        """P(X <= x)."""
        values = np.asarray(self.values)
        index = np.searchsorted(values, x, side="right")
        if index == 0:
            return 0.0
        return self.cumulative[index - 1]

    def quantile(self, q: float) -> float:
        """Smallest value with cumulative probability >= q."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        cumulative = np.asarray(self.cumulative)
        index = int(np.searchsorted(cumulative, q, side="left"))
        index = min(index, len(self.values) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """Down-sampled (value, probability) pairs for text rendering."""
        if points < 2:
            raise ValueError("points must be at least 2")
        count = len(self.values)
        if count <= points:
            return list(zip(self.values, self.cumulative))
        indices = np.linspace(0, count - 1, points).astype(int)
        return [(self.values[i], self.cumulative[i]) for i in indices]


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    if not samples:
        raise ValueError("samples must be non-empty")
    return sum(1 for s in samples if s < threshold) / len(samples)


def fraction_above(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``."""
    if not samples:
        raise ValueError("samples must be non-empty")
    return sum(1 for s in samples if s > threshold) / len(samples)


def weighted_mean(samples: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean."""
    if len(samples) != len(weights):
        raise ValueError("samples and weights must match in length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return float(sum(s * w for s, w in zip(samples, weights)) / total)


def weighted_fraction(
    samples: Sequence[float],
    weights: Sequence[float],
    predicate,
) -> float:
    """Weighted fraction of samples satisfying ``predicate``."""
    if len(samples) != len(weights):
        raise ValueError("samples and weights must match in length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return float(
        sum(w for s, w in zip(samples, weights) if predicate(s)) / total
    )
