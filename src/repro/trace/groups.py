"""Tenant-level analytics over the cluster trace.

Production traces are multi-tenant; the synthetic trace stamps every
job with a ``user_group``.  This module provides the per-tenant views a
platform team uses: who submits what, who consumes the GPUs, and how
concentrated the resource usage is (the classic "a handful of tenants
own most of the cluster" finding of multi-tenant GPU-cluster studies
the paper cites, e.g. Jeon et al.).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.architectures import Architecture
from .schema import JobRecord

__all__ = ["GroupProfile", "group_profiles", "resource_concentration"]


@dataclass(frozen=True)
class GroupProfile:
    """Aggregate submission behaviour of one tenant group."""

    group: str
    job_count: int
    cnode_total: int
    dominant_type: Architecture
    median_weight_bytes: float

    def __post_init__(self) -> None:
        if self.job_count < 1:
            raise ValueError("job_count must be at least 1")


def group_profiles(jobs: Iterable[JobRecord]) -> List[GroupProfile]:
    """Per-tenant profiles, largest resource consumer first."""
    by_group: Dict[str, List[JobRecord]] = defaultdict(list)
    for job in jobs:
        by_group[job.user_group].append(job)
    profiles = []
    for group, members in by_group.items():
        type_counts: Dict[Architecture, int] = defaultdict(int)
        for job in members:
            type_counts[job.workload_type] += 1
        dominant = max(type_counts, key=lambda a: (type_counts[a], a.value))
        weights = sorted(job.features.weight_bytes for job in members)
        profiles.append(
            GroupProfile(
                group=group,
                job_count=len(members),
                cnode_total=sum(job.num_cnodes for job in members),
                dominant_type=dominant,
                median_weight_bytes=weights[len(weights) // 2],
            )
        )
    profiles.sort(key=lambda p: p.cnode_total, reverse=True)
    return profiles


def resource_concentration(
    jobs: Iterable[JobRecord], top_fraction: float = 0.2
) -> float:
    """cNode share held by the top ``top_fraction`` of tenant groups.

    A value near ``top_fraction`` means uniform usage; values near 1
    mean a few tenants own the cluster.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    profiles = group_profiles(jobs)
    if not profiles:
        raise ValueError("trace has no jobs")
    total = sum(profile.cnode_total for profile in profiles)
    if total == 0:
        return 0.0
    top_count = max(1, int(round(top_fraction * len(profiles))))
    top = sum(profile.cnode_total for profile in profiles[:top_count])
    return top / total
