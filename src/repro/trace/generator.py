"""The calibrated synthetic PAI cluster trace (substitute for Sec. III).

The proprietary trace cannot be shipped, but the paper's collective
analysis consumes only per-job feature tuples.  This generator samples
jobs whose *time-domain* behaviour under the Sec. II-B model matches
every reported marginal statistic: workload-type mix and cNode shares
(Fig. 5), cNode-count and weight-size CDFs (Fig. 6), execution-time
breakdowns (Figs. 7-8) and the projection/sweep outcomes of Sec. III-C
(Figs. 9-11).  The calibration targets live in
:mod:`repro.trace.calibration` and are asserted by the test suite.

Sampling is parameterized in the time domain: given a job's weight
size (hence weight-traffic time ``T_w`` on its architecture's media),
the generator samples the communication-to-computation ratio
``rho = T_w / T_c``, the input ratio ``delta = T_d / T_c`` and the
memory-bound share ``beta`` of ``T_c``, then *back-derives* the feature
tuple (FLOPs, memory access, input bytes) so that applying the
analytical model under the paper's base assumptions reproduces exactly
those times.  This is the natural parameterization: the only ground
truth the paper publishes about the trace is the distribution of those
time shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.architectures import Architecture
from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.features import WorkloadFeatures
from ..core.hardware import HardwareConfig, pai_default_hardware
from .distributions import (
    beta_with_mean,
    clipped_lognormal_int,
    lognormal,
    loguniform,
    power_of_two,
)
from .schema import JobRecord

__all__ = ["TraceConfig", "ClusterTraceGenerator", "generate_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """Tunable marginals of the synthetic trace.

    Defaults are calibrated against the Sec. III statistics; see
    :mod:`repro.trace.calibration` for the target list.
    """

    num_jobs: int = 20000
    seed: int = 20190501

    # Workload-type mix (Fig. 5(a) job-level): 1w1g dominates job counts,
    # PS/Worker is 29 %, AllReduce under 1 %.
    share_1w1g: float = 0.60
    share_1wng: float = 0.10
    share_ps_worker: float = 0.29
    share_allreduce: float = 0.01

    # cNode-count distribution of PS/Worker jobs (Fig. 6(a)): about half
    # beyond 8 cNodes, ~0.7 % of all jobs beyond 128.
    ps_cnodes_median: float = 8.0
    ps_cnodes_sigma: float = 1.40
    ps_cnodes_max: int = 320

    # Weight-size distributions (Fig. 6(b)), bytes.
    small_weight_median: float = 25e6
    small_weight_sigma: float = 3.2
    ps_weight_median: float = 120e6
    ps_weight_sigma: float = 2.6
    ps_large_model_fraction: float = 0.20
    ps_large_weight_low: float = 10e9
    ps_large_weight_high: float = 300e9
    embedding_access_low: float = 3e-4
    embedding_access_high: float = 3e-2

    # Communication-to-computation ratio rho = T_w / T_c.
    ps_rho_median: float = 3.4
    ps_rho_sigma: float = 2.0
    ps_rho_cnode_exponent: float = 0.25
    local_rho_median: float = 1.5
    local_rho_sigma: float = 1.0

    # Input ratios.  1w1g/1wng jobs sample delta = T_d / T_c; PS/Worker
    # jobs sample gamma = T_d / T_w instead, because the Fig. 9
    # projection outcomes constrain the input time *relative to the
    # weight traffic* it competes against.  The PS population is a
    # mixture: most jobs have negligible input pipelines, but a cohort
    # of I/O-intensive jobs (large-sample recommendation/CTR training)
    # sits just above the contention break-even -- exactly the jobs
    # whose bottleneck shifts to PCIe under AllReduce-Local (Fig. 10).
    delta_median_1w1g: float = 0.065
    delta_sigma_1w1g: float = 1.7
    delta_median_dist: float = 0.025
    delta_sigma_dist: float = 0.9
    gamma_light_median: float = 0.004
    gamma_light_sigma: float = 1.2
    gamma_heavy_fraction: float = 0.35
    gamma_heavy_median: float = 0.26
    gamma_heavy_sigma: float = 0.6
    #: I/O-heavy jobs are typically lighter communicators (small-model,
    #: sample-hungry training); scales their rho median down.
    gamma_heavy_rho_scale: float = 0.35

    # Memory-bound share beta of T_c (memory-bound exceeds compute-bound
    # on average: Sec. III-B).
    beta_mean: float = 0.62
    beta_concentration: float = 7.0

    # Absolute computation-time scale (seconds per step) for jobs whose
    # T_c is not anchored by a weight-derived T_w (1w1g).
    compute_time_median: float = 0.18
    compute_time_sigma: float = 0.95

    trace_days: int = 51
    #: Tenant groups; assignment is Zipf-skewed, and the big production
    #: tenants (the first few groups) own most distributed jobs --
    #: matching the heavy per-tenant skew multi-tenant GPU-cluster
    #: studies report (Jeon et al., cited by the paper).
    user_groups: int = 24
    production_groups: int = 5

    def __post_init__(self) -> None:
        shares = (
            self.share_1w1g
            + self.share_1wng
            + self.share_ps_worker
            + self.share_allreduce
        )
        if abs(shares - 1.0) > 1e-9:
            raise ValueError(f"workload-type shares must sum to 1, got {shares}")
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be positive")


class ClusterTraceGenerator:
    """Generates :class:`JobRecord` populations per :class:`TraceConfig`."""

    def __init__(
        self,
        config: TraceConfig = TraceConfig(),
        hardware: HardwareConfig = None,
        efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    ) -> None:
        self.config = config
        self.hardware = hardware if hardware is not None else pai_default_hardware()
        self.efficiency = efficiency

    # ---- time-domain helpers ---------------------------------------

    def _weight_time(self, features_arch: Architecture, traffic: float) -> float:
        """T_w of a traffic volume on the architecture's media."""
        seconds = 0.0
        for medium in features_arch.weight_media:
            bandwidth = self.hardware.bandwidth_of(medium)
            seconds += traffic / (bandwidth * self.efficiency.for_medium(medium))
        return seconds

    def _derive_compute(self, rng: np.random.Generator, compute_time: float) -> tuple:
        """Split T_c into (flop_count, memory_access_bytes)."""
        beta = beta_with_mean(
            rng, self.config.beta_mean, self.config.beta_concentration
        )
        gpu = self.hardware.gpu
        flops = compute_time * (1.0 - beta) * gpu.peak_flops * self.efficiency.compute
        access = compute_time * beta * gpu.memory_bandwidth * self.efficiency.memory
        return flops, access

    def _derive_input(
        self, data_time: float, contention: int
    ) -> float:
        """Input bytes whose transfer takes ``data_time`` under contention."""
        pcie = self.hardware.pcie.bandwidth * self.efficiency.pcie
        return data_time * pcie / max(contention, 1)

    # ---- per-type samplers -----------------------------------------

    def _sample_1w1g(self, rng: np.random.Generator, index: int) -> WorkloadFeatures:
        config = self.config
        weight = lognormal(rng, config.small_weight_median, config.small_weight_sigma)
        compute_time = lognormal(
            rng, config.compute_time_median, config.compute_time_sigma
        )
        delta = lognormal(rng, config.delta_median_1w1g, config.delta_sigma_1w1g)
        flops, access = self._derive_compute(rng, compute_time)
        return WorkloadFeatures(
            name=f"job-{index}-1w1g",
            architecture=Architecture.SINGLE,
            num_cnodes=1,
            batch_size=power_of_two(rng, 4, 10),
            flop_count=flops,
            memory_access_bytes=access,
            input_bytes=self._derive_input(delta * compute_time, 1),
            weight_traffic_bytes=0.0,
            dense_weight_bytes=weight,
        )

    def _sample_local_distributed(
        self, rng: np.random.Generator, index: int, architecture: Architecture
    ) -> WorkloadFeatures:
        """1wng and AllReduce-Local jobs: local multi-GPU."""
        config = self.config
        num_cnodes = int(rng.integers(2, 9))
        weight = lognormal(rng, config.small_weight_median, config.small_weight_sigma)
        traffic = weight  # pull + push of the trainables == at-rest bytes
        weight_time = self._weight_time(architecture, traffic)
        rho = lognormal(rng, config.local_rho_median, config.local_rho_sigma)
        compute_time = weight_time / rho
        delta = lognormal(rng, config.delta_median_dist, config.delta_sigma_dist)
        flops, access = self._derive_compute(rng, compute_time)
        return WorkloadFeatures(
            name=f"job-{index}-{architecture.value}",
            architecture=architecture,
            num_cnodes=num_cnodes,
            batch_size=power_of_two(rng, 4, 10),
            flop_count=flops,
            memory_access_bytes=access,
            input_bytes=self._derive_input(delta * compute_time, num_cnodes),
            weight_traffic_bytes=traffic,
            dense_weight_bytes=weight,
        )

    def _sample_ps_worker(
        self, rng: np.random.Generator, index: int
    ) -> WorkloadFeatures:
        config = self.config
        num_cnodes = clipped_lognormal_int(
            rng,
            config.ps_cnodes_median,
            config.ps_cnodes_sigma,
            low=1,
            high=config.ps_cnodes_max,
        )
        is_large = rng.random() < config.ps_large_model_fraction
        if is_large:
            weight = loguniform(
                rng, config.ps_large_weight_low, config.ps_large_weight_high
            )
            embedding = 0.98 * weight
            dense = weight - embedding
            access_fraction = loguniform(
                rng, config.embedding_access_low, config.embedding_access_high
            )
            traffic = dense + access_fraction * embedding
        else:
            weight = lognormal(rng, config.ps_weight_median, config.ps_weight_sigma)
            embedding = 0.0
            dense = weight
            traffic = weight
        weight_time = self._weight_time(Architecture.PS_WORKER, traffic)
        # Larger jobs skew further toward communication (Sec. III-B).
        scale = (num_cnodes / 8.0) ** config.ps_rho_cnode_exponent
        io_heavy = rng.random() < config.gamma_heavy_fraction
        if io_heavy:
            scale *= config.gamma_heavy_rho_scale
            gamma = lognormal(
                rng, config.gamma_heavy_median, config.gamma_heavy_sigma
            )
        else:
            gamma = lognormal(
                rng, config.gamma_light_median, config.gamma_light_sigma
            )
        rho = lognormal(rng, config.ps_rho_median * scale, config.ps_rho_sigma)
        compute_time = weight_time / rho
        flops, access = self._derive_compute(rng, compute_time)
        return WorkloadFeatures(
            name=f"job-{index}-ps",
            architecture=Architecture.PS_WORKER,
            num_cnodes=num_cnodes,
            batch_size=power_of_two(rng, 5, 11),
            flop_count=flops,
            memory_access_bytes=access,
            input_bytes=self._derive_input(gamma * weight_time, 1),
            weight_traffic_bytes=traffic,
            dense_weight_bytes=dense,
            embedding_weight_bytes=embedding,
        )

    # ---- trace assembly --------------------------------------------

    def generate(self) -> List[JobRecord]:
        """Generate the full synthetic trace (deterministic per seed)."""
        from ..obs import get_obs

        with get_obs().trace(
            "trace.generate",
            num_jobs=self.config.num_jobs,
            seed=self.config.seed,
        ):
            return self._generate()

    def _generate(self) -> List[JobRecord]:
        config = self.config
        rng = np.random.default_rng(config.seed)
        type_draws = rng.choice(
            4,
            size=config.num_jobs,
            p=[
                config.share_1w1g,
                config.share_1wng,
                config.share_ps_worker,
                config.share_allreduce,
            ],
        )
        group_weights = 1.0 / np.arange(1, config.user_groups + 1)
        group_weights /= group_weights.sum()
        production_weights = 1.0 / np.arange(1, config.production_groups + 1)
        production_weights /= production_weights.sum()

        jobs: List[JobRecord] = []
        for index, draw in enumerate(type_draws):
            if draw == 0:
                features = self._sample_1w1g(rng, index)
            elif draw == 1:
                features = self._sample_local_distributed(
                    rng, index, Architecture.LOCAL_CENTRALIZED
                )
            elif draw == 2:
                features = self._sample_ps_worker(rng, index)
            else:
                features = self._sample_local_distributed(
                    rng, index, Architecture.ALLREDUCE_LOCAL
                )
            if features.architecture is Architecture.PS_WORKER:
                # Distributed production jobs concentrate in a few teams.
                group = int(rng.choice(config.production_groups, p=production_weights))
            else:
                group = int(rng.choice(config.user_groups, p=group_weights))
            jobs.append(
                JobRecord(
                    job_id=index,
                    features=features,
                    submit_day=int(rng.integers(0, config.trace_days)),
                    user_group=f"group-{group}",
                )
            )
        return jobs


def generate_trace(
    num_jobs: int = 20000,
    seed: int = 20190501,
    config: TraceConfig = None,
) -> List[JobRecord]:
    """Convenience wrapper: generate the default calibrated trace."""
    if config is None:
        config = TraceConfig(num_jobs=num_jobs, seed=seed)
    return ClusterTraceGenerator(config).generate()
