"""Synthetic PAI cluster trace: schema, generator, calibration, stats."""

from .calibration import CALIBRATION_TARGETS, CalibrationTarget, evaluate_targets
from .columnar import (
    ColumnarTrace,
    columnar_to_jsonl,
    is_columnar_store,
    jsonl_to_columnar,
    write_columnar,
)
from .filters import (
    by_cnode_band,
    by_day_window,
    by_tenant,
    by_type,
    by_weight_band,
    filter_jobs,
    split_by,
)
from .generator import ClusterTraceGenerator, TraceConfig, generate_trace
from .groups import GroupProfile, group_profiles, resource_concentration
from .schema import (
    JobRecord,
    JobView,
    features_of_type,
    iter_day_groups,
    jobs_of_type,
)
from .serialization import (
    SCHEMA_VERSION,
    append_trace,
    iter_trace,
    job_from_dict,
    job_to_dict,
    load_trace,
    save_trace,
)
from .statistics import (
    EmpiricalCDF,
    StreamingCDF,
    fraction_above,
    fraction_below,
    weighted_fraction,
    weighted_mean,
)

__all__ = [
    "CALIBRATION_TARGETS",
    "CalibrationTarget",
    "ClusterTraceGenerator",
    "ColumnarTrace",
    "EmpiricalCDF",
    "columnar_to_jsonl",
    "GroupProfile",
    "JobRecord",
    "JobView",
    "SCHEMA_VERSION",
    "StreamingCDF",
    "TraceConfig",
    "append_trace",
    "by_cnode_band",
    "by_day_window",
    "by_tenant",
    "by_type",
    "by_weight_band",
    "evaluate_targets",
    "features_of_type",
    "iter_day_groups",
    "filter_jobs",
    "fraction_above",
    "fraction_below",
    "generate_trace",
    "group_profiles",
    "is_columnar_store",
    "iter_trace",
    "jsonl_to_columnar",
    "job_from_dict",
    "job_to_dict",
    "jobs_of_type",
    "load_trace",
    "resource_concentration",
    "save_trace",
    "split_by",
    "weighted_fraction",
    "weighted_mean",
    "write_columnar",
]
