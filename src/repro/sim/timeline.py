"""Text timeline rendering for simulated steps.

Turns a :class:`~repro.sim.measurement.StepMeasurement` into a compact
Gantt-style text chart -- the "look at the step" debugging view a
profiler UI would give you, without leaving the terminal::

    server0/gpu0   CCCCCCMMMMCC............WW
    server0/pcie   II..........................
    server0/nvlink ....................WWWW....

One character per time bucket; the glyph is the dominant activity in
that bucket (I=input, C=compute, M=memory, W=weight, o=overhead).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .measurement import StepMeasurement

__all__ = ["CATEGORY_GLYPHS", "render_timeline", "busy_fraction_by_resource"]

CATEGORY_GLYPHS: Dict[str, str] = {
    "input": "I",
    "compute": "C",
    "memory": "M",
    "weight": "W",
    "overhead": "o",
}

_IDLE = "."


def busy_fraction_by_resource(measurement: StepMeasurement) -> Dict[str, float]:
    """Fraction of the step each device/channel spends busy."""
    span = measurement.step_time
    if span <= 0:
        return {}
    busy: Dict[str, float] = defaultdict(float)
    for record in measurement.records:
        busy[record.resource] += record.duration
    return {resource: min(t / span, 1.0) for resource, t in sorted(busy.items())}


def render_timeline(
    measurement: StepMeasurement,
    width: int = 72,
    max_resources: int = 16,
) -> str:
    """Render the step as one text row per resource.

    Buckets the step into ``width`` slots; each slot shows the glyph of
    the activity covering most of it on that resource.
    """
    if width < 8:
        raise ValueError("width must be at least 8")
    span = measurement.step_time
    if span <= 0:
        return "(empty step)"
    per_resource: Dict[str, List[float]] = {}
    glyphs: Dict[str, List[str]] = {}
    bucket = span / width
    for record in measurement.records:
        if record.resource not in per_resource:
            per_resource[record.resource] = [0.0] * width
            glyphs[record.resource] = [_IDLE] * width
        coverage = per_resource[record.resource]
        row = glyphs[record.resource]
        glyph = CATEGORY_GLYPHS.get(record.category, "?")
        first = min(int(record.start / bucket), width - 1)
        last = min(int(max(record.end - 1e-15, record.start) / bucket), width - 1)
        for slot in range(first, last + 1):
            slot_start = slot * bucket
            slot_end = slot_start + bucket
            overlap = min(record.end, slot_end) - max(record.start, slot_start)
            if overlap > coverage[slot]:
                coverage[slot] = overlap
                row[slot] = glyph
    resources = sorted(per_resource)[:max_resources]
    name_width = max(len(r) for r in resources)
    lines = [
        f"{resource.ljust(name_width)}  {''.join(glyphs[resource])}"
        for resource in resources
    ]
    legend = "  ".join(
        f"{glyph}={category}" for category, glyph in CATEGORY_GLYPHS.items()
    )
    header = (
        f"step {measurement.workload}: {span * 1e3:.2f} ms over "
        f"{len(per_resource)} resources   [{legend}]"
    )
    return "\n".join([header] + lines)
