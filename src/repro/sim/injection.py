"""Fault-injection hooks for the testbed simulator.

The simulator is failure-free by construction; multi-tenant PAI
clusters are not.  :class:`StepFaults` is the narrow waist between a
fault *plan* (owned by :mod:`repro.faults`, a higher layer) and the
simulator's mechanics: one frozen record of everything that is wrong
with the cluster during one simulated step.

Three fault surfaces map onto the paper's cost structure:

* **compute stragglers** -- a per-replica slowdown multiplier applied
  to every kernel of that replica (CPU interference, thermal
  throttling, a sick GPU);
* **link degradation** -- a bandwidth multiplier on one server's PCIe
  complex, NIC or NVLink mesh (flaky cable, congested ToR port);
* **PS shard hotspots** -- a skewed shard-weight vector for the
  parameter-server fleet, stretching the incast wall of
  :mod:`repro.sim.ps` beyond the even-sharding assumption.

The executor consumes a ``StepFaults`` per step; the plan layer above
decides *when* each fault is active and compiles the active set down to
this record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from .topology import SimCluster

__all__ = ["StepFaults", "LINK_KINDS"]

#: Channel kinds addressable by a link-degradation fault.
LINK_KINDS = ("pcie", "nic", "nvlink")


@dataclass(frozen=True)
class StepFaults:
    """Everything wrong with the simulated cluster during one step.

    Attributes:
        compute_multipliers: Per-replica compute slowdown factors
            (``>= 1``; 1 = healthy), keyed by flat replica index.
        link_bandwidth: Bandwidth multipliers (``0 < m <= 1``; 1 =
            healthy) keyed by ``(server_index, kind)`` with kind one of
            :data:`LINK_KINDS`.
        ps_shard_weights: Relative traffic weights of the PS shards
            (normalized internally); ``None`` means even sharding.
    """

    compute_multipliers: Mapping[int, float] = field(default_factory=dict)
    link_bandwidth: Mapping[Tuple[int, str], float] = field(
        default_factory=dict
    )
    ps_shard_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        for replica, multiplier in self.compute_multipliers.items():
            if replica < 0:
                raise ValueError("replica index must be non-negative")
            if multiplier < 1.0:
                raise ValueError(
                    "compute multipliers are slowdowns and must be >= 1"
                )
        for (server, kind), multiplier in self.link_bandwidth.items():
            if server < 0:
                raise ValueError("server index must be non-negative")
            if kind not in LINK_KINDS:
                raise ValueError(
                    f"unknown link kind {kind!r}; expected one of {LINK_KINDS}"
                )
            if not 0.0 < multiplier <= 1.0:
                raise ValueError(
                    "link bandwidth multipliers must be in (0, 1]"
                )
        if self.ps_shard_weights is not None:
            if not self.ps_shard_weights:
                raise ValueError("ps_shard_weights must be non-empty")
            if any(weight <= 0 for weight in self.ps_shard_weights):
                raise ValueError("ps shard weights must be positive")

    @property
    def is_healthy(self) -> bool:
        """Whether this record injects nothing at all."""
        return (
            not self.compute_multipliers
            and not self.link_bandwidth
            and self.ps_shard_weights is None
        )

    def compute_multiplier(self, replica: int) -> float:
        """The slowdown factor of one replica (1.0 when healthy)."""
        return self.compute_multipliers.get(replica, 1.0)

    def degrade_cluster(self, cluster: SimCluster) -> None:
        """Apply the link-bandwidth faults to a freshly built cluster.

        Mutates the targeted channels in place; the executor builds a
        new cluster per step, so degradation never leaks across steps.
        Targets outside the cluster geometry are ignored (a fault on a
        server the deployment does not use has no observable symptom).
        """
        for (server_index, kind), multiplier in self.link_bandwidth.items():
            if server_index >= len(cluster.servers):
                continue
            server = cluster.servers[server_index]
            channel = getattr(server, kind, None)
            if channel is None:
                continue
            channel.bandwidth = channel.bandwidth * multiplier
