"""PEARL: Partitioned Embedding And RepLicated dense weights (Sec. IV-C).

PEARL is the paper's proposed distribution strategy for models with one
large sparse embedding and many small dense weights (GCN-class models):

* the **embedding table is partitioned** across the workers' GPU
  memories (it cannot be replicated -- tens of GB per table);
* at the start of each step the accessed rows are exchanged with an
  **AllGatherv** built on NCCL primitives over NVLink;
* embedding gradients return via **ReduceScatter**;
* the small **dense weights are replicated** and synchronized with a
  plain ring **AllReduce**.

This module computes the partition plan and the collective schedule;
the executor charges the resulting busy times to the NVLink channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..graphs.graph import ModelGraph
from .collectives import (
    CollectiveCost,
    allgatherv_time,
    reduce_scatter_time,
    ring_allreduce_time,
)

__all__ = ["PearlPartition", "PearlSchedule", "plan_pearl", "pearl_schedule"]


@dataclass(frozen=True)
class PearlPartition:
    """How the embedding table is split across workers."""

    num_workers: int
    embedding_bytes: float
    shard_bytes: float
    accessed_bytes_per_step: float

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.shard_bytes < 0 or self.embedding_bytes < 0:
            raise ValueError("byte volumes must be non-negative")

    def fits_in(self, gpu_memory_capacity: float) -> bool:
        """Whether each shard fits alongside the model replica."""
        return self.shard_bytes <= gpu_memory_capacity * 0.8


def plan_pearl(graph: ModelGraph, num_workers: int) -> PearlPartition:
    """Partition a model's embedding table across ``num_workers`` GPUs."""
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    embedding = graph.embedding_weight_bytes
    return PearlPartition(
        num_workers=num_workers,
        embedding_bytes=embedding,
        shard_bytes=embedding / num_workers,
        accessed_bytes_per_step=graph.embedding_access_bytes,
    )


@dataclass(frozen=True)
class PearlSchedule:
    """The per-step collective schedule of a PEARL worker."""

    gather: CollectiveCost
    scatter: CollectiveCost
    dense_allreduce: CollectiveCost

    @property
    def pre_forward(self) -> List[CollectiveCost]:
        """Collectives that must finish before the forward pass."""
        return [self.gather]

    @property
    def post_backward(self) -> List[CollectiveCost]:
        """Collectives after gradients are available."""
        return [self.scatter, self.dense_allreduce]

    @property
    def total_seconds(self) -> float:
        return (
            self.gather.seconds
            + self.scatter.seconds
            + self.dense_allreduce.seconds
        )


def pearl_schedule(
    graph: ModelGraph,
    num_workers: int,
    nvlink_bandwidth: float,
    network_efficiency: float = 0.7,
    nvlink_latency: float = 0.0,
) -> PearlSchedule:
    """Build the collective schedule for one PEARL training step.

    The accessed embedding rows (``graph.embedding_access_bytes`` is
    the round-trip volume: gather + gradient return) are split between
    the AllGatherv (forward) and the ReduceScatter (backward); each
    worker sources ``1/n`` of the rows, so the per-worker slice is the
    one-way volume divided by ``num_workers``.
    """
    one_way = graph.embedding_access_bytes / 2.0
    slice_per_worker = one_way / max(num_workers, 1)
    gather = allgatherv_time(
        slice_per_worker,
        num_workers,
        nvlink_bandwidth,
        network_efficiency,
        nvlink_latency,
        topology="mesh",
    )
    scatter = reduce_scatter_time(
        one_way,
        num_workers,
        nvlink_bandwidth,
        network_efficiency,
        nvlink_latency,
        topology="mesh",
    )
    dense = ring_allreduce_time(
        graph.dense_trainable_bytes,
        num_workers,
        nvlink_bandwidth,
        network_efficiency,
        nvlink_latency,
    )
    return PearlSchedule(gather=gather, scatter=scatter, dense_allreduce=dense)
