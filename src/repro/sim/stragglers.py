"""Straggler effects in synchronous training.

The paper's model treats every replica as identical, which is exact for
its purposes (Sec. II-B characterizes *demands*, not jitter).  But the
synchronization step of every architecture it studies is a barrier: the
PS cannot apply an update, and an AllReduce cannot complete, before the
slowest replica arrives.  On busy multi-tenant clusters per-step compute
times jitter (CPU scheduling, cache interference, thermal variation),
so the *expected* barrier time grows with the cNode count even when the
mean per-replica time does not.

This module quantifies that effect analytically: with per-replica step
times ``T * J_i`` where ``J_i`` are i.i.d. log-normal jitter factors
(median 1), the barrier waits for ``max_i J_i``.  The expected maximum
of ``n`` log-normals has no closed form; we use the standard Monte
Carlo estimate with a fixed seed so results are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.features import WorkloadFeatures
from ..core.hardware import HardwareConfig
from ..core.timemodel import PAPER_MODEL_OPTIONS, ModelOptions, estimate_breakdown

__all__ = [
    "JitterModel",
    "expected_straggler_factor",
    "straggled_step_time",
    "synchronization_penalty_curve",
]


@dataclass(frozen=True)
class JitterModel:
    """Per-replica compute jitter.

    Attributes:
        sigma: Log-space standard deviation of the per-step jitter
            factor (0.05-0.2 is typical for busy shared clusters).
        samples: Monte Carlo draws used to estimate the expected max.
        seed: RNG seed (fixed for reproducibility).
    """

    sigma: float = 0.1
    samples: int = 4000
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.samples < 1:
            raise ValueError("samples must be positive")


@lru_cache(maxsize=1024)
def _expected_max_lognormal(
    sigma: float,
    samples: int,
    seed: int,
    num_cnodes: int,
    slowdowns: Optional[Tuple[float, ...]] = None,
) -> float:
    """Monte Carlo E[max of n log-normals], memoized on its full key.

    The estimate is deterministic in ``(sigma, samples, seed, n,
    slowdowns)``, so repeated queries (the penalty curve asks twice per
    cNode count, and sweeps revisit the same counts) skip the
    4000-sample draw entirely.  ``slowdowns`` (one deterministic
    multiplier per replica) scales each replica's draws before the max,
    modeling a persistently sick replica on top of i.i.d. jitter.
    """
    rng = np.random.default_rng(seed)
    draws = rng.lognormal(mean=0.0, sigma=sigma, size=(samples, num_cnodes))
    if slowdowns is not None:
        draws = draws * np.asarray(slowdowns)
    return float(draws.max(axis=1).mean())


def expected_straggler_factor(
    num_cnodes: int,
    jitter: JitterModel = JitterModel(),
    slowdowns: Optional[Sequence[float]] = None,
) -> float:
    """E[max of n log-normal jitter factors] (median-1 normalization).

    Equals 1 for a single replica or zero jitter; grows without bound
    (slowly, ~exp(sigma * sqrt(2 ln n))) as the replica count grows.
    With ``slowdowns`` (a deterministic >=1 multiplier per replica,
    e.g. from an injected fault), the barrier waits for the slowest
    *slowed* replica: at zero jitter the factor is exactly
    ``max(slowdowns)``.
    """
    if num_cnodes < 1:
        raise ValueError("num_cnodes must be at least 1")
    key: Optional[Tuple[float, ...]] = None
    if slowdowns is not None:
        if len(slowdowns) != num_cnodes:
            raise ValueError("slowdowns must have one entry per cNode")
        if any(s < 1.0 for s in slowdowns):
            raise ValueError("slowdowns must be >= 1")
        key = tuple(float(s) for s in slowdowns)
        if all(s == 1.0 for s in key):
            key = None
    if jitter.sigma == 0 or num_cnodes == 1:
        return max(key) if key is not None else 1.0
    return _expected_max_lognormal(
        jitter.sigma, jitter.samples, jitter.seed, num_cnodes, key
    )


@lru_cache(maxsize=128)
def _expected_max_lognormal_curve(
    sigma: float, samples: int, seed: int, max_count: int
) -> Tuple[float, ...]:
    """E[max of the first n log-normals] for every n up to ``max_count``.

    One batched draw of shape ``(samples, max_count)`` plus a running
    maximum along the replica axis yields the whole curve at once --
    the prefix maxima of a common sample are exactly the per-``n``
    estimates, just drawn from one RNG stream instead of one stream
    per count.  A penalty curve over ``k`` cNode counts costs one
    matrix instead of ``k`` Monte Carlo runs, and the shared draws
    make the curve monotone by construction.
    """
    rng = np.random.default_rng(seed)
    draws = rng.lognormal(mean=0.0, sigma=sigma, size=(samples, max_count))
    running_max = np.maximum.accumulate(draws, axis=1)
    return tuple(running_max.mean(axis=0).tolist())


def _batched_straggler_factors(
    counts: Tuple[int, ...], jitter: JitterModel
) -> List[float]:
    """Straggler factors for many cNode counts from one batched draw."""
    if any(count < 1 for count in counts):
        raise ValueError("num_cnodes must be at least 1")
    if jitter.sigma == 0 or max(counts) == 1:
        return [1.0] * len(counts)
    curve = _expected_max_lognormal_curve(
        jitter.sigma, jitter.samples, jitter.seed, max(counts)
    )
    return [1.0 if count == 1 else curve[count - 1] for count in counts]


def straggled_step_time(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    jitter: JitterModel = JitterModel(),
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """Step time with the compute phase stretched by the barrier wait.

    Only the computation part jitters (network transfers are modeled as
    bandwidth-deterministic); the barrier therefore waits for the
    slowest replica's compute before synchronization starts.
    """
    breakdown = estimate_breakdown(features, hardware, efficiency, options)
    factor = expected_straggler_factor(features.num_cnodes, jitter)
    return (
        breakdown.data_io
        + breakdown.computation * factor
        + breakdown.weight_total
    )


def synchronization_penalty_curve(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    cnode_counts: Optional[List[int]] = None,
    jitter: JitterModel = JitterModel(),
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> List[dict]:
    """Relative step-time inflation vs replica count (a study table).

    The Monte Carlo draws are batched across every requested cNode
    count (:func:`_expected_max_lognormal_curve`): one ``(samples,
    max_count)`` matrix and a running maximum replace a separate
    4000-draw run per count.

    ``options`` reaches every breakdown evaluation, so non-default
    model options (overlap mode, protocol constants) shape the curve
    exactly as they shape :func:`straggled_step_time`.
    """
    if cnode_counts is None:
        cnode_counts = [1, 2, 4, 8, 16, 32, 64, 128]
    factors = _batched_straggler_factors(
        tuple(int(count) for count in cnode_counts), jitter
    )
    rows = []
    for count, factor in zip(cnode_counts, factors):
        deployed = features.with_architecture(
            features.architecture, num_cnodes=count
        )
        breakdown = estimate_breakdown(deployed, hardware, efficiency, options)
        straggled = (
            breakdown.data_io
            + breakdown.computation * factor
            + breakdown.weight_total
        )
        rows.append(
            {
                "num_cnodes": count,
                "straggler_factor": factor,
                "step_inflation": straggled / breakdown.total,
            }
        )
    return rows
