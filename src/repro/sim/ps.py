"""Parameter-server provisioning: the PS-side bottleneck.

The analytical model charges a PS/Worker job's weight traffic to the
*worker's* NIC and PCIe (Sec. II-B), implicitly assuming enough
parameter servers that the PS side never throttles.  This module makes
the PS side explicit: with ``w`` workers each moving ``V`` bytes per
step and ``p`` parameter servers sharding the variables evenly, every
PS NIC carries ``w * V / p`` bytes, so the synchronization time is::

    T_w(p) = max(V, w * V / p) / (B_eth * eff)  +  V / (B_pcie * eff)

Under-provisioned PS fleets (``p < w``) throttle the whole job -- the
classic incast wall that pushes production setups to co-locate PS
shards with workers.  :func:`recommended_ps_count` returns the smallest
fleet that keeps the PS side off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.hardware import HardwareConfig

__all__ = [
    "PsProvisioning",
    "hotspot_load_factor",
    "ps_sync_time",
    "recommended_ps_count",
    "ps_scaling_curve",
    "shard_loads",
]


@dataclass(frozen=True)
class PsProvisioning:
    """A parameter-server fleet for one job."""

    num_workers: int
    num_parameter_servers: int

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.num_parameter_servers < 1:
            raise ValueError("num_parameter_servers must be at least 1")

    @property
    def ps_load_factor(self) -> float:
        """How much more traffic each PS NIC carries than a worker NIC."""
        return self.num_workers / self.num_parameter_servers

    @property
    def ps_bound(self) -> bool:
        """Whether the PS side is the synchronization bottleneck."""
        return self.ps_load_factor > 1.0


def shard_loads(
    total_traffic: float, shard_weights: Sequence[float]
) -> List[float]:
    """Bytes each PS shard carries per step under a weight vector.

    ``shard_weights`` are relative (normalized here); even weights give
    the classic ``total / p`` split.  This is exactly the per-shard
    byte counter a real PS fleet exports, which is why the telemetry
    layer samples it as a hotspot symptom.
    """
    if total_traffic < 0:
        raise ValueError("total_traffic must be non-negative")
    if not shard_weights:
        raise ValueError("shard_weights must be non-empty")
    if any(weight <= 0 for weight in shard_weights):
        raise ValueError("shard weights must be positive")
    total_weight = float(sum(shard_weights))
    return [total_traffic * weight / total_weight for weight in shard_weights]


def hotspot_load_factor(
    num_workers: int, shard_weights: Sequence[float]
) -> float:
    """NIC load factor of the hottest shard relative to one worker.

    With even sharding this reduces to ``w / p`` (the classic
    :attr:`PsProvisioning.ps_load_factor`); a skewed weight vector
    funnels a larger share of the aggregate ``w * V`` traffic through
    the hot shard's NIC, stretching the incast wall accordingly.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    loads = shard_loads(float(num_workers), shard_weights)
    return max(loads)


def ps_sync_time(
    traffic_per_worker: float,
    provisioning: PsProvisioning,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    shard_weights: Optional[Sequence[float]] = None,
) -> float:
    """Per-step weight-synchronization time with an explicit PS fleet.

    ``shard_weights`` (one per parameter server) skews the variable
    sharding: the synchronization then waits on the hottest shard's NIC
    instead of the even ``w / p`` split.
    """
    if traffic_per_worker < 0:
        raise ValueError("traffic_per_worker must be non-negative")
    if shard_weights is not None and len(shard_weights) != (
        provisioning.num_parameter_servers
    ):
        raise ValueError(
            "shard_weights must have one entry per parameter server"
        )
    ethernet = hardware.ethernet.bandwidth * efficiency.network
    pcie = hardware.pcie.bandwidth * efficiency.pcie
    load_factor = provisioning.ps_load_factor
    if shard_weights is not None:
        load_factor = hotspot_load_factor(
            provisioning.num_workers, shard_weights
        )
    wire = max(traffic_per_worker, traffic_per_worker * load_factor)
    return wire / ethernet + traffic_per_worker / pcie


def recommended_ps_count(num_workers: int) -> int:
    """Smallest PS fleet that keeps the PS side off the critical path.

    With even sharding the PS side matches the worker side when
    ``p == w`` -- which is why production deployments co-locate one PS
    shard per worker machine.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    return num_workers


def ps_scaling_curve(
    traffic_per_worker: float,
    num_workers: int,
    hardware: HardwareConfig,
    ps_counts: List[int] = None,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
) -> List[dict]:
    """Sync time vs PS-fleet size (a provisioning-study table)."""
    if ps_counts is None:
        ps_counts = sorted(
            {1, 2, 4, num_workers // 4 or 1, num_workers // 2 or 1, num_workers}
        )
    rows = []
    for count in ps_counts:
        provisioning = PsProvisioning(num_workers, count)
        rows.append(
            {
                "num_ps": count,
                "sync_time_s": ps_sync_time(
                    traffic_per_worker, provisioning, hardware, efficiency
                ),
                "ps_bound": provisioning.ps_bound,
                "ps_load_factor": provisioning.ps_load_factor,
            }
        )
    return rows
