"""Discrete-event testbed simulator (the measured side of Sec. IV)."""

from .collectives import (
    CollectiveCost,
    allgatherv_time,
    broadcast_time,
    ps_pull_push_time,
    reduce_scatter_time,
    ring_allreduce_time,
)
from .events import Event, EventQueue, TimelineRecord
from .executor import SimulationOptions, TestbedSimulator, simulate_step
from .injection import LINK_KINDS, StepFaults
from .measurement import StepMeasurement, medium_of_resource
from .multijob import (
    ClusterScheduler,
    JobExecution,
    ScheduleResult,
    sample_durations,
)
from .pearl import PearlPartition, PearlSchedule, pearl_schedule, plan_pearl
from .ps import (
    PsProvisioning,
    hotspot_load_factor,
    ps_scaling_curve,
    ps_sync_time,
    recommended_ps_count,
    shard_loads,
)
from .resources import Channel, Device
from .stragglers import (
    JitterModel,
    expected_straggler_factor,
    straggled_step_time,
    synchronization_penalty_curve,
)
from .timeline import busy_fraction_by_resource, render_timeline
from .topology import SimCluster, SimServer, build_cluster

__all__ = [
    "Channel",
    "ClusterScheduler",
    "CollectiveCost",
    "Device",
    "Event",
    "EventQueue",
    "JitterModel",
    "JobExecution",
    "LINK_KINDS",
    "ScheduleResult",
    "PearlPartition",
    "PearlSchedule",
    "PsProvisioning",
    "SimCluster",
    "SimServer",
    "SimulationOptions",
    "StepFaults",
    "StepMeasurement",
    "TestbedSimulator",
    "TimelineRecord",
    "allgatherv_time",
    "broadcast_time",
    "build_cluster",
    "expected_straggler_factor",
    "busy_fraction_by_resource",
    "hotspot_load_factor",
    "medium_of_resource",
    "pearl_schedule",
    "plan_pearl",
    "ps_pull_push_time",
    "ps_scaling_curve",
    "ps_sync_time",
    "recommended_ps_count",
    "reduce_scatter_time",
    "render_timeline",
    "ring_allreduce_time",
    "sample_durations",
    "shard_loads",
    "simulate_step",
    "straggled_step_time",
    "synchronization_penalty_curve",
]
