"""Measurements extracted from a simulated training step.

A :class:`StepMeasurement` aggregates the timeline records of one
simulated step into the same shape the analytical model predicts
(:class:`~repro.core.timemodel.TimeBreakdown`), plus the framework
overhead the analytical model deliberately ignores (Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.timemodel import TimeBreakdown
from .events import TimelineRecord

__all__ = ["StepMeasurement", "medium_of_resource"]


def medium_of_resource(resource: str) -> str:
    """Map a channel name to the Table II medium it implements."""
    if "nic" in resource:
        return "Ethernet"
    if "nvlink" in resource:
        return "NVLink"
    if "pcie" in resource:
        return "PCIe"
    return "local"


@dataclass(frozen=True)
class StepMeasurement:
    """All timeline records of one simulated training step.

    ``replica_compute_s`` / ``replica_step_s`` expose the per-replica
    compute phase and end-to-end times (empty for measurements built
    before these fields existed).  They are what a per-worker metrics
    agent would export, so the fault-telemetry layer samples them
    directly instead of re-deriving them from the timeline records.
    """

    workload: str
    records: Tuple[TimelineRecord, ...]
    step_time: float
    num_cnodes: int
    replica_compute_s: Tuple[float, ...] = ()
    replica_step_s: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.step_time < 0:
            raise ValueError("step_time must be non-negative")

    def records_of(self, category: str) -> List[TimelineRecord]:
        return [r for r in self.records if r.category == category]

    def _per_cnode_time(self, category: str) -> float:
        """Average busy seconds per cNode in one category."""
        total = sum(r.duration for r in self.records if r.category == category)
        return total / max(self.num_cnodes, 1)

    @property
    def data_io_time(self) -> float:
        """Average per-cNode input-phase elapsed time.

        Input transfers are the first activity of the step (they are
        requested at t=0), so a record's end time includes the FIFO
        queueing delay behind sibling GPUs on the shared PCIe complex --
        which is exactly the contention the analytical model charges.
        """
        ends = [r.end for r in self.records if r.category == "input"]
        if not ends:
            return 0.0
        return sum(ends) / len(ends)

    @property
    def compute_time(self) -> float:
        return self._per_cnode_time("compute")

    @property
    def memory_time(self) -> float:
        return self._per_cnode_time("memory")

    @property
    def overhead_time(self) -> float:
        """Framework overhead (kernel launch / scheduling) per cNode."""
        return self._per_cnode_time("overhead")

    def weight_times(self) -> Dict[str, float]:
        """Per-medium weight-traffic seconds, averaged per cNode."""
        per_medium: Dict[str, float] = {}
        for record in self.records:
            if record.category != "weight":
                continue
            medium = medium_of_resource(record.resource)
            per_medium[medium] = per_medium.get(medium, 0.0) + record.duration
        return {
            medium: seconds / max(self.num_cnodes, 1)
            for medium, seconds in per_medium.items()
        }

    @property
    def weight_time(self) -> float:
        return sum(self.weight_times().values())

    def breakdown(self) -> TimeBreakdown:
        """The measured step decomposed like the analytical model."""
        return TimeBreakdown(
            data_io=self.data_io_time,
            compute_flops=self.compute_time,
            compute_memory=self.memory_time,
            weight_comm=self.weight_times(),
        )

    @property
    def serial_total(self) -> float:
        """Sum of per-cNode component times (the model's composition)."""
        return (
            self.data_io_time
            + self.compute_time
            + self.memory_time
            + self.weight_time
            + self.overhead_time
        )

    def summary(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "step_time": self.step_time,
            "data_io": self.data_io_time,
            "compute_bound": self.compute_time,
            "memory_bound": self.memory_time,
            "weight": self.weight_time,
            "overhead": self.overhead_time,
        }
