"""Measurements extracted from a simulated training step.

A :class:`StepMeasurement` aggregates the timeline records of one
simulated step into the same shape the analytical model predicts
(:class:`~repro.core.timemodel.TimeBreakdown`), plus the framework
overhead the analytical model deliberately ignores (Sec. IV).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.timemodel import TimeBreakdown
from .events import TimelineRecord

__all__ = ["StepMeasurement", "medium_of_resource"]


def medium_of_resource(resource: str) -> str:
    """Map a channel name to the Table II medium it implements."""
    if "nic" in resource:
        return "Ethernet"
    if "nvlink" in resource:
        return "NVLink"
    if "pcie" in resource:
        return "PCIe"
    return "local"


@dataclass(frozen=True)
class StepMeasurement:
    """All timeline records of one simulated training step.

    ``replica_compute_s`` / ``replica_step_s`` expose the per-replica
    compute phase and end-to-end times (empty for measurements built
    before these fields existed).  They are what a per-worker metrics
    agent would export, so the fault-telemetry layer samples them
    directly instead of re-deriving them from the timeline records.
    """

    workload: str
    records: Tuple[TimelineRecord, ...]
    step_time: float
    num_cnodes: int
    replica_compute_s: Tuple[float, ...] = ()
    replica_step_s: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.step_time < 0:
            raise ValueError("step_time must be non-negative")

    def records_of(self, category: str) -> List[TimelineRecord]:
        return [r for r in self.records if r.category == category]

    @functools.cached_property
    def _aggregates(
        self,
    ) -> Tuple[float, int, Dict[str, float], Dict[str, float]]:
        """Single pass over the timeline: every per-category total.

        The multi-job step loop reads several aggregate views of every
        measurement (breakdown, summary, serial total); computing them
        as independent property scans re-walked the record tuple once
        per view.  One cached pass yields the input-end sum/count, the
        per-category duration totals and the per-medium weight totals
        that all of them derive from.  (``functools.cached_property``
        stores via ``__dict__`` and therefore works on this frozen
        dataclass; the records tuple is immutable, so the cache can
        never go stale.)
        """
        input_end_sum = 0.0
        input_count = 0
        category_totals = {"compute": 0.0, "memory": 0.0, "overhead": 0.0}
        weight_totals: Dict[str, float] = {}
        for record in self.records:
            category = record.category
            if category == "input":
                input_end_sum += record.end
                input_count += 1
            elif category == "weight":
                medium = medium_of_resource(record.resource)
                weight_totals[medium] = (
                    weight_totals.get(medium, 0.0) + record.duration
                )
            elif category in category_totals:
                category_totals[category] += record.duration
        return input_end_sum, input_count, category_totals, weight_totals

    def _per_cnode_time(self, category: str) -> float:
        """Average busy seconds per cNode in one category."""
        return self._aggregates[2][category] / max(self.num_cnodes, 1)

    @property
    def data_io_time(self) -> float:
        """Average per-cNode input-phase elapsed time.

        Input transfers are the first activity of the step (they are
        requested at t=0), so a record's end time includes the FIFO
        queueing delay behind sibling GPUs on the shared PCIe complex --
        which is exactly the contention the analytical model charges.
        """
        input_end_sum, input_count, _, _ = self._aggregates
        if not input_count:
            return 0.0
        return input_end_sum / input_count

    @property
    def compute_time(self) -> float:
        return self._per_cnode_time("compute")

    @property
    def memory_time(self) -> float:
        return self._per_cnode_time("memory")

    @property
    def overhead_time(self) -> float:
        """Framework overhead (kernel launch / scheduling) per cNode."""
        return self._per_cnode_time("overhead")

    def weight_times(self) -> Dict[str, float]:
        """Per-medium weight-traffic seconds, averaged per cNode."""
        return {
            medium: seconds / max(self.num_cnodes, 1)
            for medium, seconds in self._aggregates[3].items()
        }

    @property
    def weight_time(self) -> float:
        return sum(self.weight_times().values())

    def breakdown(self) -> TimeBreakdown:
        """The measured step decomposed like the analytical model."""
        return TimeBreakdown(
            data_io=self.data_io_time,
            compute_flops=self.compute_time,
            compute_memory=self.memory_time,
            weight_comm=self.weight_times(),
        )

    @property
    def serial_total(self) -> float:
        """Sum of per-cNode component times (the model's composition)."""
        return (
            self.data_io_time
            + self.compute_time
            + self.memory_time
            + self.weight_time
            + self.overhead_time
        )

    def summary(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "step_time": self.step_time,
            "data_io": self.data_io_time,
            "compute_bound": self.compute_time,
            "memory_bound": self.memory_time,
            "weight": self.weight_time,
            "overhead": self.overhead_time,
        }
