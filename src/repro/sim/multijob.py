"""Cluster-level multi-job occupancy simulation.

The paper's collective analysis treats jobs independently; this module
adds the cluster dimension: thousands of jobs arriving over the trace
window (Dec 1 - Jan 20), queued and placed onto a fleet of 8-GPU
servers, respecting each architecture's placement constraints:

* local architectures (1wng, AllReduce-Local) need all their GPUs on
  **one** server (first-fit over per-server free counts);
* PS/Worker places one worker GPU per server, spreading wide;
* 1w1g takes any free GPU.

Outputs are the operational quantities a platform team watches:
GPU-hour shares per workload type (the "distributed training consumes
more than 85% of computation resources" claim of Sec. II-A2),
utilization over time, and queueing delays.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from ..core.architectures import Architecture
from ..trace.schema import JobRecord

__all__ = [
    "JobExecution",
    "ScheduleResult",
    "ClusterScheduler",
    "sample_durations",
]

_HOURS_PER_DAY = 24.0


def sample_durations(
    jobs: Iterable[JobRecord],
    median_hours: float = 2.0,
    sigma: float = 1.2,
    seed: int = 7,
) -> Dict[int, float]:
    """Deterministic per-job runtimes (the trace stores no durations).

    Durations are log-normal -- the shape every production-cluster
    study reports -- and deterministic per (seed, job_id).
    """
    if median_hours <= 0:
        raise ValueError("median_hours must be positive")
    durations = {}
    for job in jobs:
        rng = np.random.default_rng((seed, job.job_id))
        durations[job.job_id] = float(
            rng.lognormal(mean=math.log(median_hours), sigma=sigma)
        )
    return durations


@dataclass(frozen=True)
class JobExecution:
    """One scheduled job: when it waited, ran and finished."""

    job: JobRecord
    arrival_hour: float
    start_hour: float
    duration_hours: float

    @property
    def wait_hours(self) -> float:
        return self.start_hour - self.arrival_hour

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours

    @property
    def gpu_hours(self) -> float:
        return self.duration_hours * self.job.num_cnodes


@dataclass
class ScheduleResult:
    """The outcome of scheduling a trace onto a cluster."""

    executions: List[JobExecution]
    total_gpus: int
    rejected: List[JobRecord] = field(default_factory=list)

    @property
    def makespan_hours(self) -> float:
        if not self.executions:
            return 0.0
        return max(e.end_hour for e in self.executions)

    @property
    def average_wait_hours(self) -> float:
        if not self.executions:
            return 0.0
        return sum(e.wait_hours for e in self.executions) / len(self.executions)

    def gpu_hours_by_type(self) -> Dict[Architecture, float]:
        by_type: Dict[Architecture, float] = {}
        for execution in self.executions:
            arch = execution.job.workload_type
            by_type[arch] = by_type.get(arch, 0.0) + execution.gpu_hours
        return by_type

    def distributed_resource_share(self) -> float:
        """GPU-hour share of distributed (non-1w1g) jobs.

        Sec. II-A2: "More than 85% computation resources on our cluster
        are used by distributed training workloads."
        """
        by_type = self.gpu_hours_by_type()
        total = sum(by_type.values())
        if total == 0:
            return 0.0
        single = by_type.get(Architecture.SINGLE, 0.0)
        return 1.0 - single / total

    def utilization(self) -> float:
        """GPU-hours used over GPU-hours available until the makespan."""
        span = self.makespan_hours
        if span == 0:
            return 0.0
        used = sum(e.gpu_hours for e in self.executions)
        return used / (self.total_gpus * span)


class ClusterScheduler:
    """FIFO scheduler with architecture-aware placement."""

    def __init__(self, num_servers: int, gpus_per_server: int = 8) -> None:
        if num_servers < 1 or gpus_per_server < 1:
            raise ValueError("cluster dimensions must be positive")
        self.num_servers = num_servers
        self.gpus_per_server = gpus_per_server
        self._free = [gpus_per_server] * num_servers

    @property
    def total_gpus(self) -> int:
        return self.num_servers * self.gpus_per_server

    # ---- placement ---------------------------------------------------

    def _try_place(self, job: JobRecord) -> List[int]:
        """Allocate GPUs; returns per-server counts taken, or [] if not
        placeable right now."""
        arch = job.workload_type
        needed = job.num_cnodes
        taken = [0] * self.num_servers
        if arch.is_local:
            for index, free in enumerate(self._free):
                if free >= needed:
                    taken[index] = needed
                    self._free[index] -= needed
                    return taken
            return []
        # Cluster architectures: PS spreads 1/server; packed cluster
        # architectures (AllReduce-Cluster, PEARL) fill servers greedily.
        per_server_cap = (
            1 if arch is Architecture.PS_WORKER else self.gpus_per_server
        )
        remaining = needed
        for index, free in enumerate(self._free):
            if remaining == 0:
                break
            grab = min(free, per_server_cap, remaining)
            taken[index] = grab
            remaining -= grab
        if remaining > 0:
            return []  # not enough capacity in the right shape
        for index, grab in enumerate(taken):
            self._free[index] -= grab
        return taken

    def _release(self, taken: List[int]) -> None:
        for index, grab in enumerate(taken):
            self._free[index] += grab

    # ---- scheduling ---------------------------------------------------

    def schedule(
        self,
        jobs: Iterable[JobRecord],
        durations: Dict[int, float] = None,
    ) -> ScheduleResult:
        """Run the whole trace through the cluster (FIFO order).

        Jobs arrive at ``submit_day * 24`` hours; a job larger than the
        whole cluster is rejected.
        """
        pending = sorted(jobs, key=lambda j: (j.submit_day, j.job_id))
        if durations is None:
            durations = sample_durations(pending)
        completions: List[tuple] = []  # (end_hour, seq, taken)
        executions: List[JobExecution] = []
        rejected: List[JobRecord] = []
        clock = 0.0
        sequence = 0
        for job in pending:
            if job.num_cnodes > self.total_gpus:
                rejected.append(job)
                continue
            arrival = job.submit_day * _HOURS_PER_DAY
            clock = max(clock, arrival)
            # Free everything that finished before trying to place.
            while completions and completions[0][0] <= clock:
                _, _, taken = heapq.heappop(completions)
                self._release(taken)
            placement = self._try_place(job)
            while not placement:
                if not completions:
                    raise RuntimeError(
                        "scheduler stuck: job cannot be placed on an "
                        "empty cluster"
                    )
                end, _, taken = heapq.heappop(completions)
                clock = max(clock, end)
                self._release(taken)
                # Drain everything else finishing at the same instant.
                while completions and completions[0][0] <= clock:
                    _, _, more = heapq.heappop(completions)
                    self._release(more)
                placement = self._try_place(job)
            duration = durations[job.job_id]
            executions.append(
                JobExecution(
                    job=job,
                    arrival_hour=arrival,
                    start_hour=clock,
                    duration_hours=duration,
                )
            )
            sequence += 1
            heapq.heappush(completions, (clock + duration, sequence, placement))
        return ScheduleResult(
            executions=executions,
            total_gpus=self.total_gpus,
            rejected=rejected,
        )
