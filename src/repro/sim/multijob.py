"""Cluster-level multi-job occupancy simulation (compatibility client).

The scheduling machinery now lives in :mod:`repro.sched`; this module
keeps the original surface -- :func:`sample_durations`,
:class:`JobExecution`, :class:`ScheduleResult` and
:class:`ClusterScheduler` -- as a thin client of that subsystem.
:meth:`ClusterScheduler.schedule` is exactly the old behavior: strict
FIFO with head-of-line blocking and architecture-aware placement
(local gangs on one server via first-fit, PS/Worker one GPU per
server, packed cluster architectures filling greedily), now executed
by :func:`repro.sched.run_schedule` with a
:class:`~repro.sched.policies.FifoPolicy`.

Outputs are the operational quantities a platform team watches:
GPU-hour shares per workload type (the "distributed training consumes
more than 85% of computation resources" claim of Sec. II-A2),
utilization over time, and queueing delays.  For richer policies
(SJF, backfill, preemption), model-predicted runtimes and fleet
telemetry, use :mod:`repro.sched` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..core.architectures import Architecture
from ..sched.engine import run_schedule
from ..sched.fleet import Fleet
from ..sched.policies import FifoPolicy
from ..sched.predictor import sample_durations
from ..trace.schema import JobRecord

__all__ = [
    "JobExecution",
    "ScheduleResult",
    "ClusterScheduler",
    "sample_durations",
]


@dataclass(frozen=True)
class JobExecution:
    """One scheduled job: when it waited, ran and finished."""

    job: JobRecord
    arrival_hour: float
    start_hour: float
    duration_hours: float

    @property
    def wait_hours(self) -> float:
        return self.start_hour - self.arrival_hour

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours

    @property
    def gpu_hours(self) -> float:
        return self.duration_hours * self.job.num_cnodes


@dataclass
class ScheduleResult:
    """The outcome of scheduling a trace onto a cluster."""

    executions: List[JobExecution]
    total_gpus: int
    rejected: List[JobRecord] = field(default_factory=list)

    @property
    def makespan_hours(self) -> float:
        if not self.executions:
            return 0.0
        return max(e.end_hour for e in self.executions)

    @property
    def average_wait_hours(self) -> float:
        if not self.executions:
            return 0.0
        return sum(e.wait_hours for e in self.executions) / len(self.executions)

    def gpu_hours_by_type(self) -> Dict[Architecture, float]:
        by_type: Dict[Architecture, float] = {}
        for execution in self.executions:
            arch = execution.job.workload_type
            by_type[arch] = by_type.get(arch, 0.0) + execution.gpu_hours
        return by_type

    def distributed_resource_share(self) -> float:
        """GPU-hour share of distributed (non-1w1g) jobs.

        Sec. II-A2: "More than 85% computation resources on our cluster
        are used by distributed training workloads."
        """
        by_type = self.gpu_hours_by_type()
        total = sum(by_type.values())
        if total == 0:
            return 0.0
        single = by_type.get(Architecture.SINGLE, 0.0)
        return 1.0 - single / total

    def utilization(self) -> float:
        """GPU-hours used over GPU-hours available until the makespan."""
        span = self.makespan_hours
        if span == 0:
            return 0.0
        used = sum(e.gpu_hours for e in self.executions)
        return used / (self.total_gpus * span)


class ClusterScheduler:
    """FIFO scheduler with architecture-aware placement."""

    def __init__(self, num_servers: int, gpus_per_server: int = 8) -> None:
        if num_servers < 1 or gpus_per_server < 1:
            raise ValueError("cluster dimensions must be positive")
        self.num_servers = num_servers
        self.gpus_per_server = gpus_per_server

    @property
    def total_gpus(self) -> int:
        return self.num_servers * self.gpus_per_server

    def schedule(
        self,
        jobs: Iterable[JobRecord],
        durations: Dict[int, float] = None,
    ) -> ScheduleResult:
        """Run the whole trace through the cluster (FIFO order).

        Jobs arrive at ``submit_day * 24`` hours; a job larger than the
        whole cluster is rejected, and a job that can never fit the
        cluster's shape raises ``RuntimeError``.
        """
        outcome = run_schedule(
            jobs,
            Fleet(self.num_servers, self.gpus_per_server),
            FifoPolicy(),
            durations=durations,
            on_unplaceable="raise",
            collect_telemetry=False,
        )
        executions = [
            JobExecution(
                job=o.job,
                arrival_hour=o.arrival_hour,
                start_hour=o.first_start_hour,
                duration_hours=o.service_hours,
            )
            for o in outcome.outcomes
        ]
        return ScheduleResult(
            executions=executions,
            total_gpus=outcome.total_gpus,
            rejected=outcome.rejected,
        )
