"""Bandwidth-shared resources for the testbed simulator.

A :class:`Channel` models one interconnect (a PCIe complex, a NIC, an
NVLink mesh) as a FIFO bandwidth resource: transfers reserve the channel
in request order, and concurrent requests from sibling devices therefore
serialize -- which is exactly the PCIe input-contention effect the paper
observes when eight GPUs on one server load input batches simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .events import TimelineRecord

__all__ = ["Channel", "Device"]


@dataclass
class Channel:
    """One interconnect with finite bandwidth and FIFO arbitration.

    Attributes:
        name: Identifier used in timeline records ("server0/pcie").
        bandwidth: Peak bytes/s.
        latency: Per-transfer startup latency in seconds.
        efficiency: Attainable fraction of peak (Table VI measured
            values or the 70 % assumption).
    """

    name: str
    bandwidth: float
    latency: float = 0.0
    efficiency: float = 0.7
    _busy_until: float = field(default=0.0, repr=False)
    records: List[TimelineRecord] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_duration(self, num_bytes: float) -> float:
        """Occupancy time of one transfer, ignoring queueing."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency + num_bytes / (self.bandwidth * self.efficiency)

    def reserve(
        self, request_time: float, num_bytes: float, label: str, category: str
    ) -> float:
        """Enqueue a transfer at ``request_time``; returns completion time.

        The transfer starts when the channel frees up (FIFO), so sibling
        requests contend naturally.
        """
        start = max(request_time, self._busy_until)
        end = start + self.transfer_duration(num_bytes)
        self._busy_until = end
        self.records.append(
            TimelineRecord(
                name=label,
                resource=self.name,
                start=start,
                end=end,
                category=category,
                volume=num_bytes,
            )
        )
        return end

    def reset(self) -> None:
        """Clear occupancy and history (start of a new simulated step)."""
        self._busy_until = 0.0
        self.records.clear()


@dataclass
class Device:
    """One GPU as a serial execution resource.

    Attributes:
        name: Identifier ("server0/gpu3").
        peak_flops: FLOP/s at the active precision.
        memory_bandwidth: Bytes/s of device-memory access.
        compute_efficiency / memory_efficiency: attained fractions.
        launch_overhead: Per-kernel CPU scheduling + launch cost in
            seconds (the "framework overhead" of Sec. IV / Sec. VI-A3).
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    compute_efficiency: float = 0.7
    memory_efficiency: float = 0.7
    launch_overhead: float = 4e-6
    tensor_core_flops: float = 0.0
    _busy_until: float = field(default=0.0, repr=False)
    records: List[TimelineRecord] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("device capabilities must be positive")
        for name in ("compute_efficiency", "memory_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")

    @property
    def now_free(self) -> float:
        return self._busy_until

    def run_kernel(
        self,
        request_time: float,
        label: str,
        compute_seconds: float,
        category: str,
        volume: float = 0.0,
        overhead: float = None,
    ) -> float:
        """Execute one kernel; returns its completion time.

        The launch overhead is recorded as a separate "overhead"
        timeline entry so measurements can break it out.
        """
        if compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        overhead = self.launch_overhead if overhead is None else overhead
        start = max(request_time, self._busy_until)
        kernel_start = start + overhead
        end = kernel_start + compute_seconds
        self._busy_until = end
        if overhead > 0:
            self.records.append(
                TimelineRecord(
                    name=f"{label}/launch",
                    resource=self.name,
                    start=start,
                    end=kernel_start,
                    category="overhead",
                )
            )
        self.records.append(
            TimelineRecord(
                name=label,
                resource=self.name,
                start=kernel_start,
                end=end,
                category=category,
                volume=volume,
            )
        )
        return end

    def reset(self) -> None:
        self._busy_until = 0.0
        self.records.clear()
