"""Collective-communication cost models (NCCL-style, Sec. II-A2/IV-C).

Alpha-beta cost models for the collectives the architectures use:

* ring AllReduce -- dense gradient exchange of the AllReduce
  architectures and PEARL's replicated weights;
* AllGather(v) / ReduceScatter -- PEARL's partitioned-embedding
  exchange, built on NCCL primitives (Sec. IV-C);
* broadcast -- PS variable distribution;
* PS pull/push -- the centralized pattern over Ethernet + PCIe.

Each function returns the *per-node* busy time of the collective; the
executor charges it to the appropriate channels.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CollectiveCost",
    "ring_allreduce_time",
    "allgatherv_time",
    "reduce_scatter_time",
    "broadcast_time",
    "ps_pull_push_time",
]


@dataclass(frozen=True)
class CollectiveCost:
    """Busy time on each medium for one collective invocation."""

    seconds: float
    volume_per_node: float
    medium: str


def _bandwidth_time(
    num_bytes: float, bandwidth: float, efficiency: float, latency: float, steps: int
) -> float:
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return steps * latency + num_bytes / (bandwidth * efficiency)


def ring_allreduce_time(
    num_bytes: float,
    num_nodes: int,
    bandwidth: float,
    efficiency: float = 0.7,
    latency: float = 0.0,
) -> CollectiveCost:
    """A ring AllReduce of an ``num_bytes`` buffer over ``num_nodes``.

    Per-node traffic is ``2 (n-1)/n * S`` in each direction; with
    ``2(n-1)`` latency-bearing ring steps.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if num_nodes == 1:
        return CollectiveCost(0.0, 0.0, "local")
    volume = 2.0 * (num_nodes - 1) / num_nodes * num_bytes
    seconds = _bandwidth_time(
        volume, bandwidth, efficiency, latency, steps=2 * (num_nodes - 1)
    )
    return CollectiveCost(seconds, volume, "ring")


def allgatherv_time(
    bytes_per_node: float,
    num_nodes: int,
    bandwidth: float,
    efficiency: float = 0.7,
    latency: float = 0.0,
    topology: str = "ring",
) -> CollectiveCost:
    """AllGatherv: every node contributes its (variable-size) slice.

    ``bytes_per_node`` is the average slice size.  On a ``"ring"`` each
    node forwards the other ``n-1`` slices serially; on a ``"mesh"``
    (the NVLink hybrid mesh grid of Fig. 1(b)) every pairwise exchange
    runs on its own link concurrently, so the critical path is a single
    slice.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if num_nodes == 1:
        return CollectiveCost(0.0, 0.0, "local")
    if topology == "mesh":
        volume = float(bytes_per_node)
        steps = 1
    elif topology == "ring":
        volume = (num_nodes - 1) * bytes_per_node
        steps = num_nodes - 1
    else:
        raise ValueError(f"unknown topology: {topology!r}")
    seconds = _bandwidth_time(volume, bandwidth, efficiency, latency, steps)
    return CollectiveCost(seconds, volume, "allgatherv")


def reduce_scatter_time(
    num_bytes: float,
    num_nodes: int,
    bandwidth: float,
    efficiency: float = 0.7,
    latency: float = 0.0,
    topology: str = "ring",
) -> CollectiveCost:
    """ReduceScatter of an ``num_bytes`` buffer.

    Ring: ``(n-1)/n * S`` per node over ``n-1`` steps.  Mesh: each node
    sends its per-peer contributions concurrently, so the critical path
    is ``S/n``.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if num_nodes == 1:
        return CollectiveCost(0.0, 0.0, "local")
    if topology == "mesh":
        volume = num_bytes / num_nodes
        steps = 1
    elif topology == "ring":
        volume = (num_nodes - 1) / num_nodes * num_bytes
        steps = num_nodes - 1
    else:
        raise ValueError(f"unknown topology: {topology!r}")
    seconds = _bandwidth_time(volume, bandwidth, efficiency, latency, steps)
    return CollectiveCost(seconds, volume, "reduce_scatter")


def broadcast_time(
    num_bytes: float,
    num_nodes: int,
    bandwidth: float,
    efficiency: float = 0.7,
    latency: float = 0.0,
) -> CollectiveCost:
    """Pipeline broadcast: ~``S`` bytes per node independent of ``n``."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if num_nodes == 1:
        return CollectiveCost(0.0, 0.0, "local")
    seconds = _bandwidth_time(num_bytes, bandwidth, efficiency, latency, steps=1)
    return CollectiveCost(seconds, num_bytes, "broadcast")


def ps_pull_push_time(
    num_bytes: float,
    ethernet_bandwidth: float,
    pcie_bandwidth: float,
    network_efficiency: float = 0.7,
    pcie_efficiency: float = 0.7,
    ethernet_latency: float = 0.0,
    pcie_latency: float = 0.0,
) -> CollectiveCost:
    """One PS round trip: variables/gradients cross Ethernet then PCIe.

    ``num_bytes`` is the total round-trip volume (pull + push); the two
    hops serialize, matching the analytical model's Ethernet & PCIe sum.
    """
    eth = _bandwidth_time(
        num_bytes, ethernet_bandwidth, network_efficiency, ethernet_latency, 2
    )
    pci = _bandwidth_time(
        num_bytes, pcie_bandwidth, pcie_efficiency, pcie_latency, 2
    )
    return CollectiveCost(eth + pci, num_bytes, "ps")
