"""Cluster topology for the testbed simulator (Fig. 1, Sec. IV).

Builds server objects (8 GPUs, one PCIe complex, an optional NVLink
mesh, one NIC) from a :class:`~repro.core.hardware.HardwareConfig` and a
per-workload :class:`~repro.core.efficiency.EfficiencyModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.hardware import HardwareConfig
from .resources import Channel, Device

__all__ = ["SimServer", "SimCluster", "build_cluster"]


@dataclass
class SimServer:
    """One multi-GPU server."""

    index: int
    gpus: List[Device]
    pcie: Channel
    nic: Channel
    nvlink: Channel = None  # absent on servers without NVLink (Fig. 1a)

    @property
    def name(self) -> str:
        return f"server{self.index}"

    def reset(self) -> None:
        for gpu in self.gpus:
            gpu.reset()
        self.pcie.reset()
        self.nic.reset()
        if self.nvlink is not None:
            self.nvlink.reset()


@dataclass
class SimCluster:
    """A set of servers joined by Ethernet."""

    servers: List[SimServer]
    hardware: HardwareConfig
    efficiency: EfficiencyModel

    def reset(self) -> None:
        for server in self.servers:
            server.reset()

    def all_gpus(self) -> List[Device]:
        return [gpu for server in self.servers for gpu in server.gpus]

    def gpu(self, flat_index: int) -> Device:
        gpus = self.all_gpus()
        return gpus[flat_index]

    def server_of_gpu(self, flat_index: int) -> SimServer:
        per_server = len(self.servers[0].gpus)
        return self.servers[flat_index // per_server]

    def records(self):
        """All timeline records across devices and channels."""
        out = []
        for server in self.servers:
            for gpu in server.gpus:
                out.extend(gpu.records)
            out.extend(server.pcie.records)
            out.extend(server.nic.records)
            if server.nvlink is not None:
                out.extend(server.nvlink.records)
        return out


def build_cluster(
    num_servers: int,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    gpus_per_server: int = None,
    with_nvlink: bool = None,
    launch_overhead: float = 4e-6,
) -> SimCluster:
    """Instantiate a simulated cluster from a hardware configuration."""
    if num_servers < 1:
        raise ValueError("num_servers must be at least 1")
    if gpus_per_server is None:
        gpus_per_server = hardware.server.gpus_per_server
    if with_nvlink is None:
        with_nvlink = hardware.server.has_nvlink
    servers = []
    for index in range(num_servers):
        gpus = [
            Device(
                name=f"server{index}/gpu{g}",
                peak_flops=hardware.gpu.peak_flops,
                memory_bandwidth=hardware.gpu.memory_bandwidth,
                compute_efficiency=efficiency.compute,
                memory_efficiency=efficiency.memory,
                launch_overhead=launch_overhead,
                tensor_core_flops=hardware.gpu.tensor_core_flops,
            )
            for g in range(gpus_per_server)
        ]
        pcie = Channel(
            name=f"server{index}/pcie",
            bandwidth=hardware.pcie.bandwidth,
            latency=hardware.pcie.latency,
            efficiency=efficiency.pcie,
        )
        nic = Channel(
            name=f"server{index}/nic",
            bandwidth=hardware.ethernet.bandwidth,
            latency=hardware.ethernet.latency,
            efficiency=efficiency.network,
        )
        nvlink = None
        if with_nvlink:
            nvlink = Channel(
                name=f"server{index}/nvlink",
                bandwidth=hardware.nvlink.bandwidth,
                latency=hardware.nvlink.latency,
                efficiency=efficiency.network,
            )
        servers.append(
            SimServer(index=index, gpus=gpus, pcie=pcie, nic=nic, nvlink=nvlink)
        )
    return SimCluster(servers=servers, hardware=hardware, efficiency=efficiency)
