"""A minimal discrete-event core for the testbed simulator.

The training-step simulator schedules kernel executions and transfers
as timed events; this module provides the event queue and the record
types shared across the simulator.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventQueue", "TimelineRecord"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(
            self._heap, Event(self._now + delay, next(self._counter), action)
        )

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute time."""
        if time < self._now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._heap, Event(time, next(self._counter), action))

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains (or ``until`` passes).

        Returns the final simulation time.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                return self._now
            event = heapq.heappop(self._heap)
            self._now = event.time
            event.action()
        return self._now

    def __len__(self) -> int:
        return len(self._heap)


@dataclass(frozen=True)
class TimelineRecord:
    """One completed activity on a device or channel.

    These records are the raw material of the profiling pipeline
    (:mod:`repro.profiling.runmeta`): what ran where, when, and how much
    data/compute it involved.
    """

    name: str
    resource: str
    start: float
    end: float
    category: str  # "compute", "memory", "input", "weight", "overhead"
    volume: float = 0.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("end must not precede start")

    @property
    def duration(self) -> float:
        return self.end - self.start
