"""The training-step executor: simulate one step of a deployed model.

This is the "testbed" of Sec. IV: given a model graph, a deployment and
per-workload measured efficiencies (Table VI), it plays one training
step through the simulated cluster -- input load over (contended) PCIe,
kernel-by-kernel forward and backward execution with launch overheads,
and the architecture's synchronization collectives -- and returns a
:class:`~repro.sim.measurement.StepMeasurement` whose breakdown is the
"actual measurement" side of the Fig. 12 validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.architectures import Architecture
from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.hardware import HardwareConfig, testbed_v100_hardware
from ..core.units import GB
from ..obs import get_obs
from ..graphs.features_from_graph import Deployment
from ..graphs.graph import ModelGraph
from ..graphs.ops import Op, OpKind
from ..optim.mixed_precision import TENSOR_CORE_UTILIZATION
from ..optim.xla import fused_memory_efficiency
from .collectives import ring_allreduce_time
from .events import TimelineRecord
from .injection import StepFaults
from .measurement import StepMeasurement
from .pearl import pearl_schedule
from .ps import hotspot_load_factor
from .resources import Device
from .topology import SimCluster, build_cluster

__all__ = ["SimulationOptions", "TestbedSimulator", "simulate_step"]


@dataclass(frozen=True)
class SimulationOptions:
    """Executor knobs.

    Attributes:
        launch_overhead: Per-kernel CPU scheduling + launch seconds.
        mixed_precision: Run MatMul-like ops on TensorCore (the graph
            should already be transformed by the MP pass; this flag is
            used when simulating an untransformed graph directly).
        kernels_per_op: Each coarse graph op stands for this many real
            GPU kernels (the builders aggregate layer-level work); the
            per-op framework overhead is ``launch_overhead *
            kernels_per_op``.
        jitter_sigma: Per-replica compute-time jitter (log-normal,
            median 1); makes synchronous barriers wait for stragglers.
        check_memory: Reject deployments whose weights cannot fit the
            GPUs (replica mode) or shards (PEARL).
    """

    launch_overhead: float = 4e-6
    kernels_per_op: float = 25.0
    mixed_precision: bool = False
    #: Log-space sigma of per-replica compute jitter (0 = deterministic).
    #: Synchronous steps then wait for the slowest replica (stragglers).
    jitter_sigma: float = 0.0
    jitter_seed: int = 97
    #: Verify the deployment fits GPU memory before simulating.
    check_memory: bool = True


def _kernel_seconds(op: Op, device: Device, mixed_precision: bool) -> float:
    """Execution time of one op on one device.

    Honors the optimization-pass metadata: ``tensor_core`` ops run at
    the TensorCore peak with its calibrated utilization (net 2.8x on
    MatMul), ``fused`` memory-bound kernels attain the cache-residency
    memory efficiency.
    """
    if op.kind is OpKind.COMPUTE_BOUND:
        use_tc = op.tensor_core or (mixed_precision and op.matmul_like)
        if use_tc and device.tensor_core_flops > 0:
            rate = (
                device.tensor_core_flops
                * device.compute_efficiency
                * TENSOR_CORE_UTILIZATION
            )
        else:
            rate = device.peak_flops * device.compute_efficiency
        return op.flops / rate
    memory_efficiency = device.memory_efficiency
    if op.fused:
        memory_efficiency = fused_memory_efficiency(memory_efficiency)
    return op.memory_access_bytes / (
        device.memory_bandwidth * memory_efficiency
    )


def _category(op: Op) -> str:
    return "compute" if op.kind is OpKind.COMPUTE_BOUND else "memory"


class TestbedSimulator:
    """Simulates single training steps on a V100-class cluster."""

    # Not a test class despite the name (keeps pytest collection quiet).
    __test__ = False

    def __init__(
        self,
        hardware: HardwareConfig = None,
        efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
        options: SimulationOptions = SimulationOptions(),
    ) -> None:
        self.hardware = hardware if hardware is not None else testbed_v100_hardware()
        self.efficiency = efficiency
        self.options = options

    # ---- topology sizing -------------------------------------------

    def _cluster_for(self, deployment: Deployment) -> SimCluster:
        arch = deployment.architecture
        n = deployment.num_cnodes
        per_server = self.hardware.server.gpus_per_server
        if arch in (
            Architecture.SINGLE,
            Architecture.LOCAL_CENTRALIZED,
            Architecture.ALLREDUCE_LOCAL,
        ):
            servers, gpus = 1, max(n, 1)
        elif arch is Architecture.PS_WORKER:
            servers, gpus = n, 1  # one worker per server (Sec. II-A2)
        else:  # AllReduce-Cluster, PEARL: packed 8-GPU servers
            servers = max(1, math.ceil(n / per_server))
            gpus = min(n, per_server)
        return build_cluster(
            num_servers=servers,
            hardware=self.hardware,
            efficiency=self.efficiency,
            gpus_per_server=gpus,
            with_nvlink=arch.requires_nvlink or self.hardware.server.has_nvlink,
            launch_overhead=self.options.launch_overhead,
        )

    # ---- phases ------------------------------------------------------

    def _load_input(
        self, cluster: SimCluster, graph: ModelGraph, deployment: Deployment
    ) -> List[float]:
        """Every replica loads its input batch over its server's PCIe."""
        ready = []
        gpus = cluster.all_gpus()[: deployment.num_cnodes]
        for index, gpu in enumerate(gpus):
            server = cluster.server_of_gpu(index)
            ready.append(
                server.pcie.reserve(
                    0.0, graph.input_bytes, f"{gpu.name}/input", "input"
                )
            )
        return ready

    def _run_ops(
        self,
        gpu: Device,
        ops,
        start: float,
        mixed_precision: bool,
        jitter: float = 1.0,
    ) -> float:
        time = start
        for op in ops:
            seconds = _kernel_seconds(op, gpu, mixed_precision) * jitter
            volume = (
                op.flops
                if op.kind is OpKind.COMPUTE_BOUND
                else op.memory_access_bytes
            )
            time = gpu.run_kernel(
                time,
                op.name,
                seconds,
                _category(op),
                volume=volume,
                overhead=gpu.launch_overhead * self.options.kernels_per_op,
            )
        return time

    def _sync_weights(
        self,
        cluster: SimCluster,
        graph: ModelGraph,
        deployment: Deployment,
        grads_ready: List[float],
        faults: StepFaults = StepFaults(),
    ) -> List[float]:
        """Run the architecture's synchronization; returns end times."""
        arch = deployment.architecture
        n = deployment.num_cnodes
        start = max(grads_ready) if grads_ready else 0.0
        eff = cluster.efficiency

        if arch is Architecture.SINGLE or n == 1:
            return grads_ready

        if arch in (Architecture.PS_WORKER, Architecture.LOCAL_CENTRALIZED):
            dense = graph.dense_trainable_bytes
            if deployment.embedding_sync_dense:
                dense += graph.embedding_trainable_bytes
                sparse = 0.0
            else:
                sparse = graph.embedding_access_bytes
            volume = 2.0 * dense + sparse
            ends = []
            for index in range(n):
                server = cluster.server_of_gpu(index if arch is Architecture.PS_WORKER else 0)
                if arch is Architecture.PS_WORKER:
                    # Ethernet hop on the worker's NIC, then PCIe hop.
                    # An under-provisioned PS fleet (p < w) funnels the
                    # aggregate traffic through fewer PS NICs; the
                    # worker sees that incast as a stretched wire time.
                    # An injected shard hotspot has the same shape: the
                    # hottest shard's NIC becomes the wire bottleneck.
                    if faults.ps_shard_weights is not None:
                        ps_factor = max(
                            1.0,
                            hotspot_load_factor(n, faults.ps_shard_weights),
                        )
                    else:
                        ps_factor = max(
                            1.0, n / deployment.ps_fleet_size
                        )
                    eth_end = server.nic.reserve(
                        grads_ready[index],
                        volume * ps_factor,
                        f"worker{index}/ps-ethernet",
                        "weight",
                    )
                    end = server.pcie.reserve(
                        eth_end, volume, f"worker{index}/ps-pcie", "weight"
                    )
                    ends.append(end)
                else:  # 1wng: parameters on host CPU, PCIe round trip
                    end = server.pcie.reserve(
                        grads_ready[index],
                        volume,
                        f"gpu{index}/1wng-pcie",
                        "weight",
                    )
                    ends.append(end)
            return ends

        if arch in (Architecture.ALLREDUCE_LOCAL, Architecture.ALLREDUCE_CLUSTER):
            dense = graph.dense_trainable_bytes
            if deployment.embedding_sync_dense:
                dense += graph.embedding_trainable_bytes
            if arch is Architecture.ALLREDUCE_LOCAL:
                cost = ring_allreduce_time(
                    dense,
                    n,
                    self.hardware.nvlink.bandwidth,
                    eff.network,
                    self.hardware.nvlink.latency,
                )
                medium_channel = "nvlink"
            else:
                # Hierarchical ring: the Ethernet hop dominates; NVLink
                # moves the intra-server shares concurrently.
                servers = max(1, math.ceil(n / self.hardware.server.gpus_per_server))
                cost = ring_allreduce_time(
                    dense,
                    max(servers, 2),
                    self.hardware.ethernet.bandwidth,
                    eff.network,
                    self.hardware.ethernet.latency,
                )
                medium_channel = "nic"
            sparse = 0.0 if deployment.embedding_sync_dense else graph.embedding_access_bytes
            sparse_seconds = sparse / (
                self.hardware.nvlink.bandwidth * eff.network
            ) if sparse else 0.0
            ends = []
            for index in range(min(n, len(cluster.all_gpus()))):
                server = cluster.server_of_gpu(index)
                channel = server.nvlink if medium_channel == "nvlink" else server.nic
                record = TimelineRecord(
                    name=f"gpu{index}/allreduce",
                    resource=channel.name,
                    start=start,
                    end=start + cost.seconds + sparse_seconds,
                    category="weight",
                    volume=cost.volume_per_node + sparse,
                )
                channel.records.append(record)
                ends.append(record.end)
            return ends

        if arch is Architecture.PEARL:
            schedule = pearl_schedule(
                graph,
                n,
                self.hardware.nvlink.bandwidth,
                eff.network,
                self.hardware.nvlink.latency,
            )
            seconds = (
                schedule.scatter.seconds + schedule.dense_allreduce.seconds
            )
            ends = []
            for index in range(min(n, len(cluster.all_gpus()))):
                server = cluster.server_of_gpu(index)
                record = TimelineRecord(
                    name=f"gpu{index}/pearl-sync",
                    resource=server.nvlink.name,
                    start=start,
                    end=start + seconds,
                    category="weight",
                    volume=schedule.scatter.volume_per_node
                    + schedule.dense_allreduce.volume_per_node,
                )
                server.nvlink.records.append(record)
                ends.append(record.end)
            return ends

        raise AssertionError(f"unhandled architecture: {arch!r}")

    # ---- entry point -------------------------------------------------

    def _check_memory(self, graph: ModelGraph, deployment: Deployment) -> None:
        """Reject deployments whose weights cannot live on the GPUs."""
        budget = self.hardware.gpu.memory_capacity * 0.8
        arch = deployment.architecture
        if arch is Architecture.PEARL:
            shard = graph.embedding_weight_bytes / max(deployment.num_cnodes, 1)
            needed = graph.dense_weight_bytes + shard
        elif arch in (Architecture.PS_WORKER, Architecture.LOCAL_CENTRALIZED):
            # Variables live in host memory; GPUs hold a working replica
            # of the dense part only.
            needed = graph.dense_weight_bytes
        else:
            needed = graph.weight_bytes
        if needed > budget:
            raise ValueError(
                f"{graph.name} needs {needed / GB:.1f} GB per GPU under "
                f"{arch}, budget is {budget / GB:.1f} GB"
            )

    def _jitter_factors(self, n: int) -> List[float]:
        if self.options.jitter_sigma <= 0:
            return [1.0] * n
        rng = np.random.default_rng(self.options.jitter_seed)
        return list(
            rng.lognormal(mean=0.0, sigma=self.options.jitter_sigma, size=n)
        )

    def run_step(
        self,
        graph: ModelGraph,
        deployment: Deployment,
        faults: Optional[StepFaults] = None,
    ) -> StepMeasurement:
        """Simulate one training step; returns its measurement.

        ``faults`` injects the :class:`StepFaults` active during this
        step (``None`` = healthy cluster).
        """
        obs = get_obs()
        obs.metrics.counter("sim.steps").inc()
        with obs.trace(
            "sim.step",
            workload=graph.name,
            architecture=str(deployment.architecture),
            num_cnodes=deployment.num_cnodes,
        ):
            return self._run_step(graph, deployment, faults)

    def _run_step(
        self,
        graph: ModelGraph,
        deployment: Deployment,
        faults: Optional[StepFaults] = None,
    ) -> StepMeasurement:
        if faults is None:
            faults = StepFaults()
        if self.options.check_memory:
            self._check_memory(graph, deployment)
        cluster = self._cluster_for(deployment)
        cluster.reset()
        faults.degrade_cluster(cluster)
        n = deployment.num_cnodes
        input_ready = self._load_input(cluster, graph, deployment)

        # PEARL gathers the accessed embedding rows before the forward
        # pass (the rows live in other workers' shards).
        gather_done = list(input_ready)
        if deployment.architecture is Architecture.PEARL and n > 1:
            schedule = pearl_schedule(
                graph,
                n,
                self.hardware.nvlink.bandwidth,
                cluster.efficiency.network,
                self.hardware.nvlink.latency,
            )
            gather_done = []
            for index, ready in enumerate(input_ready):
                server = cluster.server_of_gpu(index)
                record = TimelineRecord(
                    name=f"gpu{index}/pearl-gather",
                    resource=server.nvlink.name,
                    start=ready,
                    end=ready + schedule.gather.seconds,
                    category="weight",
                    volume=schedule.gather.volume_per_node,
                )
                server.nvlink.records.append(record)
                gather_done.append(record.end)

        # PS workers pull variables before computing; the pull volume is
        # folded into the round trip charged after the backward pass,
        # matching the analytical model's single S_w round trip.
        grads_ready = []
        mixed = self.options.mixed_precision
        jitter = self._jitter_factors(n)
        for index in range(n):
            gpu = cluster.gpu(index)
            end = self._run_ops(
                gpu,
                graph.training_step,
                gather_done[index],
                mixed,
                jitter[index] * faults.compute_multiplier(index),
            )
            grads_ready.append(end)

        sync_ends = self._sync_weights(
            cluster, graph, deployment, grads_ready, faults
        )
        step_time = max(sync_ends) if sync_ends else max(grads_ready)
        replica_compute = tuple(
            grads_ready[i] - gather_done[i] for i in range(n)
        )
        replica_step = tuple(sync_ends) if sync_ends else tuple(grads_ready)
        return StepMeasurement(
            workload=graph.name,
            records=tuple(cluster.records()),
            step_time=step_time,
            num_cnodes=n,
            replica_compute_s=replica_compute,
            replica_step_s=replica_step,
        )


def simulate_step(
    graph: ModelGraph,
    deployment: Deployment,
    hardware: HardwareConfig = None,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: SimulationOptions = SimulationOptions(),
    faults: Optional[StepFaults] = None,
) -> StepMeasurement:
    """One-call convenience wrapper around :class:`TestbedSimulator`."""
    simulator = TestbedSimulator(hardware, efficiency, options)
    return simulator.run_step(graph, deployment, faults)
