"""On-disk, content-addressed cache of experiment results.

Each entry is one JSON file named by its configuration fingerprint
(:mod:`repro.runtime.fingerprint`).  Because the fingerprint covers the
trace config, hardware model and package version, a hit is valid by
construction -- there is no expiry logic.  Corrupt or truncated files
are treated as misses and overwritten on the next store.

Values are normalized to native Python types before storage so a warm
(cache-served) result renders byte-identically to the cold run that
produced it: JSON round-trips floats exactly via their shortest repr,
and the executor applies the same normalization to cold results.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..analysis.result import ExperimentResult

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_FORMAT",
    "ResultCache",
    "default_cache_dir",
    "normalize_value",
    "normalize_result",
]

#: Environment override for the cache root (CLI ``--cache-dir`` wins).
CACHE_DIR_ENV_VAR = "PAI_REPRO_CACHE_DIR"

#: Bumped whenever the entry layout changes; old entries become misses.
CACHE_FORMAT = 1


def default_cache_dir() -> Path:
    """``$PAI_REPRO_CACHE_DIR`` or ``~/.cache/pai-repro``."""
    override = os.environ.get(CACHE_DIR_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "pai-repro"


def normalize_value(value: Any) -> Any:
    """Coerce one cell to a JSON-native type, preserving its rendering.

    NumPy scalars leak out of vectorized experiments; ``np.bool_`` is not
    a ``bool`` subclass and would render ``True`` instead of ``yes``, and
    ``np.int64`` is not JSON-serializable at all.  Anything else
    non-native falls back to ``str``, which is exactly how the table
    renderer would have displayed it.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        # Covers np.float64 (a float subclass); plain int/float/str pass
        # through untouched.
        if type(value) in (int, float, str):
            return value
        if isinstance(value, float):
            return float(value)
        if isinstance(value, int):
            return int(value)
        return str(value)
    if hasattr(value, "item"):  # numpy scalar, incl. np.bool_ / np.int64
        return normalize_value(value.item())
    return str(value)


def normalize_result(result: ExperimentResult) -> ExperimentResult:
    """A copy of ``result`` with all row values JSON-native."""
    return ExperimentResult(
        experiment=result.experiment,
        title=result.title,
        rows=[
            {str(key): normalize_value(value) for key, value in row.items()}
            for row in result.rows
        ],
        notes=[str(note) for note in result.notes],
    )


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` entries."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """The entry file for one fingerprint."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key``, or ``None`` on any miss.

        Corrupt, truncated or foreign files are misses, never errors.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != CACHE_FORMAT:
            return None
        if payload.get("fingerprint") != key:
            return None
        try:
            return ExperimentResult(
                experiment=payload["experiment"],
                title=payload["title"],
                rows=[dict(row) for row in payload["rows"]],
                notes=[str(note) for note in payload["notes"]],
            )
        except (KeyError, TypeError, ValueError):
            return None

    def store(
        self,
        key: str,
        result: ExperimentResult,
        duration_s: Optional[float] = None,
    ) -> Path:
        """Write one entry atomically; returns the entry path."""
        result = normalize_result(result)
        payload: Dict[str, Any] = {
            "format": CACHE_FORMAT,
            "fingerprint": key,
            "experiment": result.experiment,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }
        if duration_s is not None:
            payload["duration_s"] = float(duration_s)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=str(self.root),
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, indent=1)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
