"""On-disk, content-addressed cache of experiment results.

Each entry is one JSON file named by its configuration fingerprint
(:mod:`repro.runtime.fingerprint`).  Because the fingerprint covers the
trace config, hardware model and package version, a hit is valid by
construction -- there is no expiry logic.  Corrupt or truncated files
are treated as misses and overwritten on the next store.

Values are normalized to native Python types before storage so a warm
(cache-served) result renders byte-identically to the cold run that
produced it: JSON round-trips floats exactly via their shortest repr,
and the executor applies the same normalization to cold results.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..analysis.result import ExperimentResult
from ..obs import DEBUG, WARNING, get_obs

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_FORMAT",
    "ResultCache",
    "default_cache_dir",
    "normalize_value",
    "normalize_result",
]

#: Environment override for the cache root (CLI ``--cache-dir`` wins).
CACHE_DIR_ENV_VAR = "PAI_REPRO_CACHE_DIR"

#: Bumped whenever the entry layout changes; old entries become misses.
CACHE_FORMAT = 1

#: Write temporaries older than this are orphans of a dead process and
#: safe to sweep; younger ones may be another writer's in-flight entry.
STALE_TMP_AGE_S = 3600.0


def default_cache_dir() -> Path:
    """``$PAI_REPRO_CACHE_DIR`` or ``~/.cache/pai-repro``."""
    override = os.environ.get(CACHE_DIR_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "pai-repro"


def normalize_value(value: Any) -> Any:
    """Coerce one cell to a JSON-native type, preserving its rendering.

    NumPy scalars leak out of vectorized experiments; ``np.bool_`` is not
    a ``bool`` subclass and would render ``True`` instead of ``yes``, and
    ``np.int64`` is not JSON-serializable at all.  Anything else
    non-native falls back to ``str``, which is exactly how the table
    renderer would have displayed it.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        # Covers np.float64 (a float subclass); plain int/float/str pass
        # through untouched.
        if type(value) in (int, float, str):
            return value
        if isinstance(value, float):
            return float(value)
        if isinstance(value, int):
            return int(value)
        return str(value)
    if hasattr(value, "item"):  # numpy scalar, incl. np.bool_ / np.int64
        return normalize_value(value.item())
    return str(value)


def normalize_result(result: ExperimentResult) -> ExperimentResult:
    """A copy of ``result`` with all row values JSON-native."""
    return ExperimentResult(
        experiment=result.experiment,
        title=result.title,
        rows=[
            {str(key): normalize_value(value) for key, value in row.items()}
            for row in result.rows
        ],
        notes=[str(note) for note in result.notes],
    )


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` entries."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """The entry file for one fingerprint."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key``, or ``None`` on any miss.

        Corrupt, truncated or foreign files are misses, never errors.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            get_obs().event("cache.load", level=DEBUG, key=key, outcome="miss")
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._corrupt(key, "not JSON")
            return None
        if not isinstance(payload, dict):
            self._corrupt(key, "not an object")
            return None
        if payload.get("format") != CACHE_FORMAT:
            get_obs().event(
                "cache.load", level=DEBUG, key=key, outcome="stale-format"
            )
            return None
        if payload.get("fingerprint") != key:
            self._corrupt(key, "fingerprint mismatch")
            return None
        try:
            result = ExperimentResult(
                experiment=payload["experiment"],
                title=payload["title"],
                rows=[dict(row) for row in payload["rows"]],
                notes=[str(note) for note in payload["notes"]],
            )
        except (KeyError, TypeError, ValueError):
            self._corrupt(key, "missing or malformed fields")
            return None
        get_obs().event("cache.load", level=DEBUG, key=key, outcome="hit")
        return result

    def _corrupt(self, key: str, reason: str) -> None:
        """Report a corrupt entry (treated as a miss, never an error)."""
        obs = get_obs()
        obs.metrics.counter("cache.corrupt").inc()
        obs.event("cache.corrupt", level=WARNING, key=key, reason=reason)

    def store(
        self,
        key: str,
        result: ExperimentResult,
        duration_s: Optional[float] = None,
    ) -> Path:
        """Write one entry atomically; returns the entry path."""
        result = normalize_result(result)
        payload: Dict[str, Any] = {
            "format": CACHE_FORMAT,
            "fingerprint": key,
            "experiment": result.experiment,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }
        if duration_s is not None:
            payload["duration_s"] = float(duration_s)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=str(self.root),
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, indent=1)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        get_obs().event(
            "cache.store",
            level=DEBUG,
            key=key,
            bytes=path.stat().st_size,
        )
        # A process killed between temp-file creation and the atomic
        # rename above leaves a ``*.tmp`` orphan behind; opportunistic
        # sweeping on every store keeps them from accumulating forever.
        self.sweep_tmp(max_age_s=STALE_TMP_AGE_S)
        return path

    def discard(self, key: str) -> bool:
        """Delete one entry if present; True when a file was removed.

        Lets a long-lived writer (the serve query layer) evict entries
        it has superseded instead of accumulating one file per
        generation forever.  Races with concurrent writers are benign:
        a missing file is simply False.
        """
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        get_obs().event("cache.discard", level=DEBUG, key=key)
        return True

    def sweep_tmp(self, max_age_s: float = 0.0) -> int:
        """Delete orphaned ``*.tmp`` write temporaries; returns the count.

        ``max_age_s`` spares temporaries younger than that many seconds
        (a concurrent writer's in-flight entry); ``0`` sweeps them all.
        """
        if not self.root.is_dir():
            return 0
        now = time.time()
        removed = 0
        for tmp in self.root.glob("*.tmp"):
            try:
                if max_age_s > 0 and now - tmp.stat().st_mtime < max_age_s:
                    continue
                tmp.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            obs = get_obs()
            obs.metrics.counter("cache.tmp_swept").inc(removed)
            obs.event("cache.tmp_swept", level=DEBUG, count=removed)
        return removed

    def clear(self) -> int:
        """Delete every entry and write temporary; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = self.sweep_tmp(max_age_s=0.0)
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
