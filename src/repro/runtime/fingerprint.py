"""Configuration fingerprinting for the result cache.

A cached experiment result is only valid for the exact inputs that
produced it: the trace-generator configuration, the hardware model, the
analytical-model knobs and the package version.  This module hashes all
of them into one hex digest; any change -- a different seed, a tweaked
calibration constant, a version bump -- yields a new fingerprint, so a
stale cache entry can never be served.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Optional

from .. import __version__
from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY
from ..core.timemodel import PAPER_MODEL_OPTIONS

__all__ = [
    "canonical_payload",
    "canonical_json",
    "fingerprint",
    "experiment_fingerprint",
]


def canonical_payload(obj: Any) -> Any:
    """Convert configuration objects into a JSON-stable structure.

    Dataclasses are tagged with their class name so two configs with the
    same field values but different meanings never collide; enums hash by
    qualified name; mappings are key-sorted.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: canonical_payload(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        return {
            str(key): canonical_payload(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj
    if hasattr(obj, "item"):  # numpy scalar
        return canonical_payload(obj.item())
    return repr(obj)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding of :func:`canonical_payload`."""
    return json.dumps(
        canonical_payload(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical JSON of ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical_json(part).encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


def experiment_fingerprint(
    experiment_id: str,
    trace_config: Optional[Any] = None,
    hardware: Optional[Any] = None,
) -> str:
    """The cache key of one experiment under the current configuration.

    Covers the experiment id, the suite's trace-generator config (which
    includes the ``PAI_REPRO_TRACE_JOBS`` override), the content
    identity of any ``PAI_REPRO_TRACE_PATH`` external trace, the
    Table I hardware model, the analytical-model defaults, and the
    package version.
    """
    from ..analysis.context import (
        default_hardware,
        default_trace_config,
        trace_source_identity,
    )

    if trace_config is None:
        trace_config = default_trace_config()
    if hardware is None:
        hardware = default_hardware()
    return fingerprint(
        {"experiment": experiment_id, "version": __version__},
        trace_config,
        {"trace_source": trace_source_identity()},
        hardware,
        PAPER_DEFAULT_EFFICIENCY,
        PAPER_MODEL_OPTIONS,
    )
