"""Parallel, cached, error-isolated execution of the experiment suite.

``run_suite`` is the engine behind ``pai-repro all`` and ``pai-repro
report``:

* experiments run in parallel worker processes (``jobs > 1``) or
  in-process (``jobs == 1``, the monkeypatch-friendly path tests use);
* each experiment is individually fenced -- a raising experiment
  becomes a failed :class:`ExperimentOutcome` carrying its traceback,
  and the rest of the suite still runs.  That isolation extends to
  *hard* worker deaths (OOM kill, ``os._exit``): pool breakage is
  converted into per-experiment outcomes rather than aborting the run
  (see below);
* with a :class:`~repro.runtime.cache.ResultCache`, previously computed
  results are served from disk and re-runs are near-instant;
* every experiment is reported as a ``span`` event through
  :mod:`repro.obs`, with cache traffic and pool lifecycle counted in
  the metric registry.

Workers are forked after the parent pre-generates the default trace, so
the 20k-job synthetic trace is shared copy-on-write instead of being
regenerated per process.

Hard-crash isolation: experiments are ``submit()``-ed individually and
every ``future.result()`` is fenced.  When a worker dies hard the pool
breaks and *all* unfinished futures raise ``BrokenProcessPool`` -- the
crasher and its innocent in-flight neighbours are indistinguishable at
that point, so each unresolved experiment is retried once in a fresh
single-worker pool.  Survivors complete there; the experiment that
kills its private pool a second time becomes a failed outcome naming
the worker death.  (Retrying in a throwaway subprocess rather than
in-process keeps a determined crasher from taking the parent down.)
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.result import ExperimentResult
from ..obs import DEBUG, INFO, WARNING, get_obs
from .cache import ResultCache, normalize_result
from .fingerprint import experiment_fingerprint

__all__ = [
    "ExperimentOutcome",
    "run_suite",
    "suite_experiment_ids",
    "failed_ids",
]

#: Panel aliases excluded from full-suite runs (same data as ``fig13``).
_SUITE_SKIP = frozenset({"fig13a", "fig13b", "fig13c", "fig13d"})

#: ``(id, result, error, wall_s, cpu_s)`` as returned by workers.
_RawOutcome = Tuple[str, Optional[ExperimentResult], Optional[str], float, float]


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's result -- or its failure -- plus provenance."""

    experiment_id: str
    result: Optional[ExperimentResult]
    error: Optional[str]
    duration_s: float
    cached: bool = False
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def __post_init__(self) -> None:
        if (self.result is None) == (self.error is None):
            raise ValueError(
                "an outcome carries exactly one of result or error"
            )


def suite_experiment_ids() -> List[str]:
    """Registry order minus the fig13 panel aliases."""
    from ..analysis.registry import experiment_ids

    return [
        experiment_id
        for experiment_id in experiment_ids()
        if experiment_id not in _SUITE_SKIP
    ]


def failed_ids(outcomes: Sequence[ExperimentOutcome]) -> List[str]:
    """Ids of the failed outcomes, in order."""
    return [o.experiment_id for o in outcomes if not o.ok]


def _run_one(experiment_id: str) -> _RawOutcome:
    """Run one experiment, fencing any exception into a traceback string.

    Module-level so the fork-based process pool can pickle it by name.
    """
    from ..analysis.registry import run_experiment

    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        result = normalize_result(run_experiment(experiment_id))
    except BaseException:
        return (
            experiment_id,
            None,
            traceback.format_exc(),
            time.perf_counter() - wall_start,
            time.process_time() - cpu_start,
        )
    return (
        experiment_id,
        result,
        None,
        time.perf_counter() - wall_start,
        time.process_time() - cpu_start,
    )


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _run_isolated(
    experiment_id: str, context: multiprocessing.context.BaseContext
) -> _RawOutcome:
    """Retry one experiment in a fresh single-worker pool.

    A second hard crash breaks only this private pool and is converted
    into a failed outcome for exactly this experiment.
    """
    obs = get_obs()
    obs.event("pool.retry", level=INFO, experiment=experiment_id)
    obs.metrics.counter("pool.retries").inc()
    wall_start = time.perf_counter()
    try:
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            return pool.submit(_run_one, experiment_id).result()
    except BaseException as exc:
        obs.event(
            "pool.worker_died",
            level=WARNING,
            experiment=experiment_id,
            error=type(exc).__name__,
        )
        obs.metrics.counter("pool.worker_deaths").inc()
        return (
            experiment_id,
            None,
            (
                f"worker process died while running {experiment_id!r} "
                f"({type(exc).__name__}); the experiment was retried in an "
                "isolated worker, which also died -- the experiment itself "
                "hard-crashes (OOM kill, os._exit, segfault)"
            ),
            time.perf_counter() - wall_start,
            0.0,
        )


def _run_pool(
    pending: List[str],
    workers: int,
    context: multiprocessing.context.BaseContext,
) -> List[_RawOutcome]:
    """Run experiments in a shared pool, surviving worker deaths.

    Every future is fenced individually: an exception out of
    ``future.result()`` (``BrokenProcessPool`` when a worker dies hard)
    marks that experiment *unresolved* instead of aborting the suite;
    unresolved experiments are then each retried in their own fresh
    single-worker pool by :func:`_run_isolated`.
    """
    obs = get_obs()
    obs.event(
        "pool.start", level=DEBUG, workers=workers, pending=len(pending)
    )
    obs.metrics.gauge("pool.workers").set(workers)
    resolved: Dict[str, _RawOutcome] = {}
    unresolved: List[str] = []
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(_run_one, experiment_id): experiment_id
                for experiment_id in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in done:
                    experiment_id = futures[future]
                    try:
                        resolved[experiment_id] = future.result()
                    except BaseException as exc:
                        unresolved.append(experiment_id)
                        obs.event(
                            "pool.future_broken",
                            level=DEBUG,
                            experiment=experiment_id,
                            error=type(exc).__name__,
                        )
    except BaseException as exc:
        # Pool teardown itself can raise once broken; anything not yet
        # resolved is retried below.
        obs.event("pool.teardown_error", level=DEBUG, error=type(exc).__name__)
    unresolved = [e for e in pending if e not in resolved]
    if unresolved:
        obs.event(
            "pool.broken",
            level=WARNING,
            unresolved=unresolved,
            resolved=len(resolved),
        )
        for experiment_id in unresolved:
            resolved[experiment_id] = _run_isolated(experiment_id, context)
    return [resolved[experiment_id] for experiment_id in pending]


def run_suite(
    experiment_ids: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 0,
) -> List[ExperimentOutcome]:
    """Run experiments with caching, parallelism and error isolation.

    Args:
        experiment_ids: Which experiments to run; defaults to the full
            suite in registry order.
        jobs: Worker-process count.  ``1`` runs in-process (sequential);
            higher values fork a process pool.
        cache: Optional on-disk result cache; hits skip execution
            entirely, and fresh successes are stored back.
        retries: Re-run each *failed* experiment up to this many extra
            times before accepting the failure.  Off by default: the
            suite is deterministic, so a failure normally reproduces --
            opt in when experiments touch flaky externals (sockets,
            subprocesses).  Each attempt emits a ``runtime.retry`` obs
            event, and the attempts consumed are recorded on the
            outcome's ``retries`` field.

    Returns:
        One :class:`ExperimentOutcome` per requested id, in request
        order.  Failures are outcomes, not exceptions -- including
        hard worker deaths under ``jobs > 1``, which fail only the
        crashing experiment (in-process runs cannot fence a hard
        ``os._exit``).
    """
    from ..analysis.context import default_trace
    from ..analysis.registry import EXPERIMENTS

    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    obs = get_obs()
    if experiment_ids is None:
        experiment_ids = suite_experiment_ids()
    experiment_ids = list(experiment_ids)
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")

    outcomes: Dict[str, ExperimentOutcome] = {}
    keys: Dict[str, str] = {}
    pending: List[str] = []
    for experiment_id in experiment_ids:
        if experiment_id in outcomes or experiment_id in pending:
            continue
        if cache is not None:
            keys[experiment_id] = experiment_fingerprint(experiment_id)
            start = time.perf_counter()
            hit = cache.load(keys[experiment_id])
            if hit is not None:
                duration_s = time.perf_counter() - start
                outcomes[experiment_id] = ExperimentOutcome(
                    experiment_id=experiment_id,
                    result=hit,
                    error=None,
                    duration_s=duration_s,
                    cached=True,
                )
                obs.metrics.counter("cache.hit").inc()
                obs.span_event(
                    "experiment",
                    wall_s=duration_s,
                    id=experiment_id,
                    cached=True,
                )
                continue
            obs.metrics.counter("cache.miss").inc()
        pending.append(experiment_id)

    context = _fork_context() if jobs > 1 and len(pending) > 1 else None
    with obs.metrics.time("suite"):
        if context is not None:
            # Generate the shared trace before forking: workers inherit
            # the pages copy-on-write instead of regenerating per process.
            default_trace()
            raw = _run_pool(pending, min(jobs, len(pending)), context)
        else:
            raw = [_run_one(experiment_id) for experiment_id in pending]

        attempts: Dict[str, int] = {}
        for attempt in range(1, retries + 1):
            failed = [entry[0] for entry in raw if entry[2] is not None]
            if not failed:
                break
            for experiment_id in failed:
                attempts[experiment_id] = attempt
                obs.event(
                    "runtime.retry",
                    level=WARNING,
                    experiment=experiment_id,
                    attempt=attempt,
                )
                obs.metrics.counter("runtime.retries").inc()
            if context is not None:
                reruns = _run_pool(
                    failed, min(jobs, len(failed)), context
                )
            else:
                reruns = [_run_one(experiment_id) for experiment_id in failed]
            rerun_by_id = {entry[0]: entry for entry in reruns}
            raw = [rerun_by_id.get(entry[0], entry) for entry in raw]

    for experiment_id, result, error, wall_s, cpu_s in raw:
        outcome = ExperimentOutcome(
            experiment_id=experiment_id,
            result=result,
            error=error,
            duration_s=wall_s,
            retries=attempts.get(experiment_id, 0),
        )
        outcomes[experiment_id] = outcome
        obs.metrics.counter(
            "experiments.ok" if outcome.ok else "experiments.failed"
        ).inc()
        obs.span_event(
            "experiment",
            wall_s=wall_s,
            cpu_s=cpu_s,
            status="ok" if outcome.ok else "error",
            level=INFO if not outcome.ok else DEBUG,
            id=experiment_id,
            cached=False,
        )
        if cache is not None and outcome.ok:
            cache.store(keys[experiment_id], result, duration_s=wall_s)
            obs.metrics.counter("cache.store").inc()

    return [outcomes[experiment_id] for experiment_id in experiment_ids]
