"""Parallel, cached, error-isolated execution of the experiment suite.

``run_suite`` is the engine behind ``pai-repro all`` and ``pai-repro
report``:

* experiments run in parallel worker processes (``jobs > 1``) or
  in-process (``jobs == 1``, the monkeypatch-friendly path tests use);
* each experiment is individually fenced -- a raising experiment
  becomes a failed :class:`ExperimentOutcome` carrying its traceback,
  and the rest of the suite still runs;
* with a :class:`~repro.runtime.cache.ResultCache`, previously computed
  results are served from disk and re-runs are near-instant.

Workers are forked after the parent pre-generates the default trace, so
the 20k-job synthetic trace is shared copy-on-write instead of being
regenerated per process.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.result import ExperimentResult
from .cache import ResultCache, normalize_result
from .fingerprint import experiment_fingerprint

__all__ = [
    "ExperimentOutcome",
    "run_suite",
    "suite_experiment_ids",
    "failed_ids",
]

#: Panel aliases excluded from full-suite runs (same data as ``fig13``).
_SUITE_SKIP = frozenset({"fig13a", "fig13b", "fig13c", "fig13d"})


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's result -- or its failure -- plus provenance."""

    experiment_id: str
    result: Optional[ExperimentResult]
    error: Optional[str]
    duration_s: float
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def __post_init__(self) -> None:
        if (self.result is None) == (self.error is None):
            raise ValueError(
                "an outcome carries exactly one of result or error"
            )


def suite_experiment_ids() -> List[str]:
    """Registry order minus the fig13 panel aliases."""
    from ..analysis.registry import experiment_ids

    return [
        experiment_id
        for experiment_id in experiment_ids()
        if experiment_id not in _SUITE_SKIP
    ]


def failed_ids(outcomes: Sequence[ExperimentOutcome]) -> List[str]:
    """Ids of the failed outcomes, in order."""
    return [o.experiment_id for o in outcomes if not o.ok]


def _run_one(
    experiment_id: str,
) -> Tuple[str, Optional[ExperimentResult], Optional[str], float]:
    """Run one experiment, fencing any exception into a traceback string.

    Module-level so the fork-based process pool can pickle it by name.
    """
    from ..analysis.registry import run_experiment

    start = time.perf_counter()
    try:
        result = normalize_result(run_experiment(experiment_id))
    except BaseException:
        return (
            experiment_id,
            None,
            traceback.format_exc(),
            time.perf_counter() - start,
        )
    return experiment_id, result, None, time.perf_counter() - start


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def run_suite(
    experiment_ids: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[ExperimentOutcome]:
    """Run experiments with caching, parallelism and error isolation.

    Args:
        experiment_ids: Which experiments to run; defaults to the full
            suite in registry order.
        jobs: Worker-process count.  ``1`` runs in-process (sequential);
            higher values fork a process pool.
        cache: Optional on-disk result cache; hits skip execution
            entirely, and fresh successes are stored back.

    Returns:
        One :class:`ExperimentOutcome` per requested id, in request
        order.  Failures are outcomes, not exceptions.
    """
    from ..analysis.context import default_trace
    from ..analysis.registry import EXPERIMENTS

    if experiment_ids is None:
        experiment_ids = suite_experiment_ids()
    experiment_ids = list(experiment_ids)
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")

    outcomes: Dict[str, ExperimentOutcome] = {}
    keys: Dict[str, str] = {}
    pending: List[str] = []
    for experiment_id in experiment_ids:
        if experiment_id in outcomes or experiment_id in pending:
            continue
        if cache is not None:
            keys[experiment_id] = experiment_fingerprint(experiment_id)
            start = time.perf_counter()
            hit = cache.load(keys[experiment_id])
            if hit is not None:
                outcomes[experiment_id] = ExperimentOutcome(
                    experiment_id=experiment_id,
                    result=hit,
                    error=None,
                    duration_s=time.perf_counter() - start,
                    cached=True,
                )
                continue
        pending.append(experiment_id)

    context = _fork_context() if jobs > 1 and len(pending) > 1 else None
    if context is not None:
        # Generate the shared trace before forking: workers inherit the
        # pages copy-on-write instead of regenerating it per process.
        default_trace()
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            raw = list(pool.map(_run_one, pending))
    else:
        raw = [_run_one(experiment_id) for experiment_id in pending]

    for experiment_id, result, error, duration_s in raw:
        outcome = ExperimentOutcome(
            experiment_id=experiment_id,
            result=result,
            error=error,
            duration_s=duration_s,
        )
        outcomes[experiment_id] = outcome
        if cache is not None and outcome.ok:
            cache.store(keys[experiment_id], result, duration_s=duration_s)

    return [outcomes[experiment_id] for experiment_id in experiment_ids]
