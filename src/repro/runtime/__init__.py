"""repro.runtime -- the experiment-execution layer.

Sits between the experiment registry (:mod:`repro.analysis.registry`)
and the CLI: runs the suite in parallel worker processes with
per-experiment error isolation, and serves repeat runs from an on-disk
content-addressed result cache keyed on the full configuration
fingerprint (trace config, hardware model, model knobs, package
version).

The third leg of the layer -- the columnar NumPy batch-evaluation path
the figure experiments use -- lives in :mod:`repro.core.population`
(:class:`~repro.core.population.FeatureArrays`,
:func:`~repro.core.population.batch_breakdowns`).
"""

from .cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_FORMAT,
    ResultCache,
    default_cache_dir,
    normalize_result,
    normalize_value,
)
from .executor import (
    ExperimentOutcome,
    failed_ids,
    run_suite,
    suite_experiment_ids,
)
from .fingerprint import (
    canonical_json,
    canonical_payload,
    experiment_fingerprint,
    fingerprint,
)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_FORMAT",
    "ExperimentOutcome",
    "ResultCache",
    "canonical_json",
    "canonical_payload",
    "default_cache_dir",
    "experiment_fingerprint",
    "failed_ids",
    "fingerprint",
    "normalize_result",
    "normalize_value",
    "run_suite",
    "suite_experiment_ids",
]
