"""The resident trace-analytics service: a concurrent JSON query API.

A :class:`TraceService` owns the sharded population state and exposes it
over a stdlib ``ThreadingHTTPServer`` -- one handler thread per request,
many concurrent readers, none of them blocking ingestion (reads work on
merged copy-on-write snapshots; see :mod:`repro.serve.state`).

Endpoints (all JSON):

==========================  =============================================
``GET /healthz``            liveness, job/generation counters, uptime
``GET /stats``              merged population aggregates at both levels
``GET /cdf/<metric>``       sketched CDF of one metric
                            (``?level=job|cnode&points=N``)
``GET /census``             bottleneck-label population shares
``POST /ingest``            append a batch of serialized job records
==========================  =============================================

Query responses are content-addressed into the existing
:class:`repro.runtime.cache.ResultCache` keyed by (endpoint, params,
per-shard content-digest vector, model-config fingerprint), so a hot
query at an unchanged generation is served without re-merging or
re-rendering.  The digests identify the ingested data itself -- two
service runs over different traces can never alias, even at identical
batch counts -- and each store evicts the entry it supersedes so a
long-lived service keeps at most one live entry per (endpoint, params).

Shutdown is graceful: ``shutdown()`` stops accepting new connections,
then joins every in-flight handler thread before returning (the HTTP/1.0
one-request-per-connection discipline guarantees handlers terminate).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..analysis.result import ExperimentResult
from ..obs import get_obs
from ..runtime.cache import ResultCache
from ..runtime.fingerprint import fingerprint
from ..trace.schema import JobRecord
from ..trace.serialization import job_from_dict, job_to_dict
from .replay import TraceReplayer
from .state import ShardedState, StatsSnapshot
from .stats import AGGREGATION_LEVELS, CDF_METRICS

__all__ = ["MAX_INGEST_BYTES", "QueryError", "TraceService", "serialize_jobs"]

#: Request body cap for ``POST /ingest`` (guards the resident process
#: against one unbounded request, not a real security boundary).
MAX_INGEST_BYTES = 64 * 1024 * 1024


class QueryError(Exception):
    """A client error with the HTTP status it should produce."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    """Per-request handler: route, delegate to the service, write JSON."""

    # One request per connection: handler threads always terminate after
    # their response, which is what makes draining on shutdown finite.
    protocol_version = "HTTP/1.0"
    server_version = "pai-repro-serve"
    timeout = 30

    def log_message(self, fmt: str, *args: Any) -> None:
        get_obs().debug("serve.http " + fmt % args)

    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            # The client went away mid-response; nothing to salvage.
            get_obs().metrics.counter("serve.query.aborted").inc()

    def _handle(self, method: str) -> None:
        service: "TraceService" = self.server.service  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query))
        body: Optional[bytes] = None
        if method == "POST":
            raw_length = self.headers.get("Content-Length") or "0"
            try:
                length = int(raw_length)
            except ValueError:
                length = -1
            if length < 0:
                # A malformed header must produce a 400, not a handler
                # thread abort and a dropped connection.
                self._respond(
                    400, {"error": f"invalid Content-Length: {raw_length!r}"}
                )
                return
            if length > MAX_INGEST_BYTES:
                self._respond(413, {"error": "ingest body too large"})
                return
            body = self.rfile.read(length)
        obs = get_obs()
        obs.metrics.counter("serve.query.requests").inc()
        status = 200
        try:
            with obs.trace("serve.query", method=method, path=split.path):
                payload = service.handle(method, split.path, params, body)
        except QueryError as error:
            status = error.status
            payload = {"error": str(error)}
        except Exception as error:  # a broken query must not kill the thread
            obs.error(
                "serve.query.crashed", path=split.path, exception=repr(error)
            )
            status = 500
            payload = {"error": f"internal error: {error}"}
        if status != 200:
            obs.metrics.counter("serve.query.errors").inc()
        self._respond(status, payload)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer that joins its handler threads on close."""

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, service: "TraceService") -> None:
        super().__init__(address, _Handler)
        self.service = service


class TraceService:
    """The resident analytics service: state + replayer + HTTP server."""

    def __init__(
        self,
        state: Optional[ShardedState] = None,
        cache: Optional[ResultCache] = None,
        num_shards: int = 4,
    ) -> None:
        self.state = state if state is not None else ShardedState(num_shards)
        self.cache = cache
        # (endpoint, params) -> (generation, key) of the newest stored
        # cache entry, so each store can evict the one it supersedes.
        self._live_entries: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], Tuple[int, str]
        ] = {}
        self._live_entries_lock = threading.Lock()
        self._server: Optional[_Server] = None
        self._server_thread: Optional[threading.Thread] = None
        self._replayer: Optional[TraceReplayer] = None
        self._replay_thread: Optional[threading.Thread] = None
        self._replay_done = threading.Event()
        self._started_at: Optional[float] = None
        self._shutdown_requested = threading.Event()

    # ---- lifecycle -------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving on a background thread."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _Server((host, port), self)
        self._started_at = time.monotonic()
        # Daemon so a crashed embedding process can still exit; graceful
        # drain comes from stop() joining this thread explicitly.
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._server_thread.start()
        get_obs().event(
            "serve.started",
            host=self.host,
            port=self.port,
            shards=self.state.num_shards,
        )

    @property
    def host(self) -> str:
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service not started")
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        """The service base URL."""
        return f"http://{self.host}:{self.port}"

    def start_replay(self, replayer: TraceReplayer) -> None:
        """Begin streaming a trace into the state on its own thread."""
        if self._replay_thread is not None:
            raise RuntimeError("a replay is already running")
        self._replayer = replayer
        self._replay_done.clear()

        def _run() -> None:
            try:
                replayer.replay(self.state.ingest)
            finally:
                self._replay_done.set()

        self._replay_thread = threading.Thread(
            target=_run, name="serve-replay", daemon=True
        )
        self._replay_thread.start()

    @property
    def ingest_complete(self) -> bool:
        """True when no replay is running (finished, stopped, or none)."""
        return self._replay_thread is None or self._replay_done.is_set()

    def wait_for_ingest(self, timeout: Optional[float] = None) -> bool:
        """Block until the running replay finishes; True on completion."""
        if self._replay_thread is None:
            return True
        finished = self._replay_done.wait(timeout)
        if finished:
            self._replay_thread.join()
        return finished

    def request_shutdown(self) -> None:
        """Signal-handler entry point: ask the serving loop to stop."""
        self._shutdown_requested.set()

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`request_shutdown` is called."""
        return self._shutdown_requested.wait(timeout)

    def stop(self) -> None:
        """Graceful shutdown: stop ingesting, drain in-flight queries.

        Safe to call more than once.  Order matters: the replayer stops
        first (no new writes), then the listener stops accepting, then
        ``server_close`` joins every in-flight handler thread so no
        response is cut off mid-write.
        """
        if self._replayer is not None:
            self._replayer.stop()
        if self._replay_thread is not None:
            self._replay_thread.join()
            self._replay_thread = None
            self._replayer = None
        if self._server is None:
            return
        obs = get_obs()
        with obs.trace("serve.drain"):
            self._server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join()
                self._server_thread = None
            self._server.server_close()
        self._server = None
        obs.event(
            "serve.stopped",
            jobs=self.state.job_count,
            generation=self.state.generation,
        )

    # ---- routing ---------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        body: Optional[bytes],
    ) -> Dict[str, Any]:
        """Dispatch one request; returns the JSON payload or raises."""
        parts = [part for part in path.split("/") if part]
        if method == "GET":
            if parts == ["healthz"]:
                return self._healthz()
            if parts == ["stats"]:
                return self._cached("stats", params, self._stats)
            if parts == ["census"]:
                return self._cached("census", params, self._census)
            if len(parts) == 2 and parts[0] == "cdf":
                params = dict(params, metric=parts[1])
                return self._cached("cdf", params, self._cdf)
            raise QueryError(404, f"unknown endpoint: GET {path}")
        if method == "POST":
            if parts == ["ingest"]:
                return self._ingest(body)
            raise QueryError(404, f"unknown endpoint: POST {path}")
        raise QueryError(405, f"unsupported method: {method}")

    # ---- endpoints -------------------------------------------------

    def _healthz(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        # Counts come from the same snapshot view the query endpoints
        # serve, so a client alternating endpoints never sees the job
        # count move backwards while a merge is in flight.
        snapshot = self.state.snapshot()
        return {
            "status": "ok",
            "jobs": snapshot.job_count,
            "generation": snapshot.generation,
            "shards": self.state.num_shards,
            "ingest_complete": self.ingest_complete,
            "uptime_s": uptime,
        }

    def _cached(self, endpoint: str, params: Dict[str, str], render):
        """Serve a read endpoint through the content-addressed cache.

        The key covers the endpoint, its parameters, the per-shard
        content-digest vector and the model-config fingerprint, so an
        entry can never be served for a population it does not describe
        -- the same validity-by-construction argument the experiment
        cache makes.  The digests hash the ingested jobs themselves:
        a different trace produces different keys even when its shards
        reach identical batch counts, which keeps a shared persistent
        cache dir safe across service runs.

        Storing a new generation's entry evicts the one it supersedes
        for the same (endpoint, params), so live ingestion leaves at
        most one entry per query shape behind instead of one per batch.
        """
        snapshot = self.state.snapshot()
        obs = get_obs()
        if self.cache is None:
            return render(snapshot, params)
        key = fingerprint(
            {
                "serve": endpoint,
                "params": sorted(params.items()),
                "versions": list(snapshot.versions),
                "digests": list(snapshot.digests),
            },
            snapshot.stats.config_fingerprint,
        )
        hit = self.cache.load(key)
        if hit is not None:
            obs.metrics.counter("serve.query.cache_hits").inc()
            return json.loads(hit.rows[0]["payload"])
        obs.metrics.counter("serve.query.cache_misses").inc()
        payload = render(snapshot, params)
        self.cache.store(
            key,
            ExperimentResult(
                experiment=f"serve.{endpoint}",
                title=f"serve {endpoint} response",
                rows=[{"payload": json.dumps(payload, sort_keys=True)}],
                notes=[f"params={sorted(params.items())!r}"],
            ),
        )
        self._evict_superseded(endpoint, params, snapshot.generation, key)
        return payload

    def _evict_superseded(
        self,
        endpoint: str,
        params: Dict[str, str],
        generation: int,
        key: str,
    ) -> None:
        """Record ``key`` as the live entry for its query shape.

        Whatever older-generation entry it replaces is discarded from
        the cache; racing misses settle on the newest generation, and a
        loser's orphaned entry costs one file, not unbounded growth.
        """
        shape = (endpoint, tuple(sorted(params.items())))
        superseded: Optional[str] = None
        with self._live_entries_lock:
            previous = self._live_entries.get(shape)
            if previous is not None and previous[0] > generation:
                superseded = key  # we lost the race; drop our own entry
            else:
                self._live_entries[shape] = (generation, key)
                if previous is not None and previous[1] != key:
                    superseded = previous[1]
        if superseded is not None:
            self.cache.discard(superseded)

    @staticmethod
    def _level(params: Dict[str, str]) -> str:
        level = params.get("level", "job")
        if level not in AGGREGATION_LEVELS:
            raise QueryError(
                400,
                f"unknown level {level!r} (expected one of "
                f"{'/'.join(AGGREGATION_LEVELS)})",
            )
        return level

    def _stats(
        self, snapshot: StatsSnapshot, params: Dict[str, str]
    ) -> Dict[str, Any]:
        stats = snapshot.stats
        payload: Dict[str, Any] = {
            "jobs": stats.job_count,
            "cnodes": stats.cnode_total,
            "generation": snapshot.generation,
            "architectures": {
                label: stats.arch_jobs[label]
                for label in sorted(stats.arch_jobs)
            },
            "fractions": {},
            "hardware_shares": {},
        }
        if stats.job_count:
            for level in AGGREGATION_LEVELS:
                payload["fractions"][level] = stats.average_fractions(level)
                payload["hardware_shares"][level] = (
                    stats.average_hardware_shares(level)
                )
        return payload

    def _census(
        self, snapshot: StatsSnapshot, params: Dict[str, str]
    ) -> Dict[str, Any]:
        stats = snapshot.stats
        payload: Dict[str, Any] = {
            "jobs": stats.job_count,
            "generation": snapshot.generation,
            "census": {},
        }
        if stats.job_count:
            for level in AGGREGATION_LEVELS:
                payload["census"][level] = stats.census(level)
        return payload

    def _cdf(
        self, snapshot: StatsSnapshot, params: Dict[str, str]
    ) -> Dict[str, Any]:
        metric = params["metric"]
        if metric not in CDF_METRICS:
            raise QueryError(
                400,
                f"unknown metric {metric!r} (expected one of "
                f"{'/'.join(CDF_METRICS)})",
            )
        level = self._level(params)
        try:
            points = int(params.get("points", "50"))
        except ValueError:
            raise QueryError(400, "points must be an integer") from None
        if points < 2:
            raise QueryError(400, "points must be at least 2")
        stats = snapshot.stats
        payload: Dict[str, Any] = {
            "metric": metric,
            "level": level,
            "jobs": stats.job_count,
            "generation": snapshot.generation,
            "quantiles": {},
            "series": [],
        }
        if stats.job_count:
            cdf = stats.cdf(metric, level)
            payload["quantiles"] = {
                "p50": cdf.quantile(0.50),
                "p90": cdf.quantile(0.90),
                "p99": cdf.quantile(0.99),
            }
            payload["series"] = [
                [value, probability]
                for value, probability in cdf.series(points)
            ]
        return payload

    def _ingest(self, body: Optional[bytes]) -> Dict[str, Any]:
        if not body:
            raise QueryError(400, "ingest requires a JSON body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise QueryError(400, f"invalid JSON body: {error}") from None
        records = payload.get("jobs") if isinstance(payload, dict) else None
        if not isinstance(records, list):
            raise QueryError(
                400, 'ingest body must be {"jobs": [<job records>]}'
            )
        jobs = []
        for index, record in enumerate(records):
            try:
                jobs.append(job_from_dict(record))
            except (KeyError, TypeError, ValueError) as error:
                raise QueryError(
                    400, f"invalid job record at index {index}: {error}"
                ) from None
        ingested = self.state.ingest(jobs)
        return {
            "ingested": ingested,
            "jobs": self.state.job_count,
            "generation": self.state.generation,
        }


def serialize_jobs(jobs: Sequence[JobRecord]) -> Dict[str, Any]:
    """The ``POST /ingest`` body for a batch of records."""
    return {"jobs": [job_to_dict(job) for job in jobs]}
