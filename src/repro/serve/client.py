"""A small stdlib client for the trace-analytics service.

Wraps :mod:`urllib.request` around the JSON endpoints of
:class:`repro.serve.server.TraceService`: one method per endpoint, plus
a readiness helper for scripts that must wait for ingestion to finish.
Used by the load generator (``benchmarks/bench_serve.py``), the CI smoke
job and the concurrency tests -- anything that talks to the service the
way an external consumer would.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Sequence

from ..trace.schema import JobRecord
from .server import serialize_jobs

__all__ = ["ServeClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Blocking JSON client for one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path,
            data=(
                json.dumps(body).encode("utf-8") if body is not None else None
            ),
            headers=(
                {"Content-Type": "application/json"}
                if body is not None
                else {}
            ),
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(error.code, detail) from None

    # ---- endpoints -------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness and progress counters."""
        return self._request("/healthz")

    def stats(self) -> Dict[str, Any]:
        """Merged population aggregates at both levels."""
        return self._request("/stats")

    def census(self) -> Dict[str, Any]:
        """Bottleneck-label population shares."""
        return self._request("/census")

    def cdf(
        self, metric: str, level: str = "job", points: int = 50
    ) -> Dict[str, Any]:
        """The sketched CDF of one metric."""
        return self._request(f"/cdf/{metric}?level={level}&points={points}")

    def ingest(self, jobs: Sequence[JobRecord]) -> Dict[str, Any]:
        """Append a batch of job records to the live population."""
        return self._request("/ingest", body=serialize_jobs(jobs))

    # ---- convenience -----------------------------------------------

    def wait_until_ingested(
        self, timeout: float = 60.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the service reports ingest complete.

        Returns the final health payload; raises ``TimeoutError`` if the
        replay does not finish within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            health = self.healthz()
            if health.get("ingest_complete"):
                return health
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"ingestion incomplete after {timeout:.1f}s: {health}"
                )
            time.sleep(poll_s)
