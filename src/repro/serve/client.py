"""A small stdlib client for the trace-analytics service.

Wraps :mod:`http.client` around the JSON endpoints of
:class:`repro.serve.server.TraceService`: one method per endpoint, plus
a readiness helper for scripts that must wait for ingestion to finish.
Used by the load generator (``benchmarks/bench_serve.py``), the CI smoke
job and the concurrency tests -- anything that talks to the service the
way an external consumer would.

The client separates the *connect* timeout (how long to wait for the
TCP handshake) from the *read* timeout (how long to wait for a
response on an established connection), and retries transient failures
-- connection refused/reset, dropped connections, 5xx responses --
with bounded exponential backoff and deterministic jitter.  4xx
responses and timeouts on an established connection are never retried:
the former are caller bugs, and the latter may have already mutated
server state.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..trace.schema import JobRecord
from .server import serialize_jobs

__all__ = ["ServeClient", "ServiceError", "TRANSIENT_ERRORS"]

#: Connection-level failures that are safe to retry: the request either
#: never reached the service or the service died before answering.
TRANSIENT_ERRORS: Tuple[type, ...] = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status

    @property
    def transient(self) -> bool:
        """Whether the failure is server-side and worth retrying."""
        return self.status >= 500


class ServeClient:
    """Blocking JSON client for one service base URL.

    Parameters
    ----------
    connect_timeout:
        Seconds to wait for the TCP connection to be established.
    read_timeout:
        Seconds to wait for the response once connected.
    retries:
        Additional attempts after the first failed one; ``0`` disables
        retrying entirely.
    backoff_base / backoff_cap:
        Attempt ``k`` (zero-based) sleeps ``min(cap, base * 2**k)``
        seconds, stretched by up to 25% deterministic jitter.
    jitter_seed:
        Seed for the jitter stream, so retry schedules reproduce.
    sleep:
        Injectable sleep function (tests pass a recorder).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be positive")
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"expected an http:// base URL, got {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        self._prefix = parsed.path
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._jitter = random.Random(jitter_seed)
        self._sleep = sleep

    # ---- transport -------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (zero-based), with jitter."""
        base = min(self.backoff_cap, self.backoff_base * (2.0**attempt))
        return base * (1.0 + 0.25 * self._jitter.random())

    def _request_once(
        self, path: str, body: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout
        )
        try:
            connection.connect()
            if connection.sock is not None:
                connection.sock.settimeout(self.read_timeout)
            connection.request(
                "POST" if body is not None else "GET",
                self._prefix + path,
                body=(
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else None
                ),
                headers=(
                    {"Content-Type": "application/json"}
                    if body is not None
                    else {}
                ),
            )
            response = connection.getresponse()
            payload = response.read().decode("utf-8", errors="replace")
            if not 200 <= response.status < 300:
                try:
                    payload = json.loads(payload).get("error", payload)
                except ValueError:
                    pass
                raise ServiceError(response.status, payload)
            return json.loads(payload)
        finally:
            connection.close()

    def _request(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._request_once(path, body)
            except ServiceError as error:
                if not error.transient or attempt >= self.retries:
                    raise
            except TRANSIENT_ERRORS:
                if attempt >= self.retries:
                    raise
            self._sleep(self.backoff_delay(attempt))
            attempt += 1

    # ---- endpoints -------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness and progress counters."""
        return self._request("/healthz")

    def stats(self) -> Dict[str, Any]:
        """Merged population aggregates at both levels."""
        return self._request("/stats")

    def census(self) -> Dict[str, Any]:
        """Bottleneck-label population shares."""
        return self._request("/census")

    def cdf(
        self, metric: str, level: str = "job", points: int = 50
    ) -> Dict[str, Any]:
        """The sketched CDF of one metric."""
        return self._request(f"/cdf/{metric}?level={level}&points={points}")

    def ingest(self, jobs: Sequence[JobRecord]) -> Dict[str, Any]:
        """Append a batch of job records to the live population."""
        return self._request("/ingest", body=serialize_jobs(jobs))

    # ---- convenience -----------------------------------------------

    def wait_until_ingested(
        self, timeout: float = 60.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the service reports ingest complete.

        Returns the final health payload; raises ``TimeoutError`` if the
        replay does not finish within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            health = self.healthz()
            if health.get("ingest_complete"):
                return health
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"ingestion incomplete after {timeout:.1f}s: {health}"
                )
            time.sleep(poll_s)
