"""Resident trace-analytics service: streaming ingestion, sharded
online statistics and a concurrent JSON query API.

The batch path (``pai-repro all`` / ``report``) materializes a whole
trace, computes every figure once and exits.  This package is the
long-running counterpart, the shape PAI itself runs in (Wang et al.,
IISWC 2019): jobs arrive over simulated time through a trace replayer
(:mod:`~repro.serve.replay`), land in N lock-guarded population shards
holding mergeable online statistics (:mod:`~repro.serve.stats`,
:mod:`~repro.serve.state`), and a ``ThreadingHTTPServer`` JSON API
(:mod:`~repro.serve.server`) serves many concurrent clients from merged
copy-on-write snapshots -- with hot query responses content-addressed
into the existing :mod:`repro.runtime.cache`.

With ingestion complete, the served numbers match the one-shot batch
path on the same trace: that equivalence is pinned by
:func:`~repro.serve.stats.batch_reference`, the serve test suite and
the CI ``serve-smoke`` job.  Run it via ``pai-repro serve`` and talk to
it with :class:`~repro.serve.client.ServeClient`.
"""

from .client import TRANSIENT_ERRORS, ServeClient, ServiceError
from .replay import ReplayBatch, TraceReplayer
from .server import QueryError, TraceService, serialize_jobs
from .state import ShardedState, StatsSnapshot
from .stats import (
    AGGREGATION_LEVELS,
    CDF_METRICS,
    ShardStats,
    batch_reference,
    payload_leaves,
)

__all__ = [
    "AGGREGATION_LEVELS",
    "CDF_METRICS",
    "QueryError",
    "ReplayBatch",
    "ServeClient",
    "ServiceError",
    "TRANSIENT_ERRORS",
    "ShardStats",
    "ShardedState",
    "StatsSnapshot",
    "TraceReplayer",
    "TraceService",
    "batch_reference",
    "payload_leaves",
    "serialize_jobs",
]
