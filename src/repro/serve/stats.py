"""Mergeable online statistics: one shard's view of a live population.

A :class:`ShardStats` ingests batches of :class:`~repro.trace.schema.JobRecord`
and maintains, incrementally, the same aggregates the one-shot batch
path computes over a fully materialized trace:

* per-component and per-hardware-component average shares, at job and
  cNode level (the Figs. 7/8 numbers);
* the bottleneck census (the label view of Fig. 10);
* per-architecture job and cNode counts (the Fig. 5 composition);
* streaming CDF sketches of component shares, step times and cNode
  counts (the Fig. 8 distributions).

Everything is *mergeable*: shards accumulate independently under their
own locks and :meth:`ShardStats.merged` combines them on demand into
whole-population numbers.  Averages and counts merge exactly (modulo
float summation order); CDFs merge exactly while the population fits
the sketch capacity and with ~1/capacity rank error beyond it.

:func:`batch_reference` computes the identical payload through the
one-shot batch path (``core.population`` + ``core.classify`` +
``EmpiricalCDF.from_samples``), which is what the equivalence tests and
the CI smoke job compare a drained service against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.classify import (
    DOMINANCE_THRESHOLD,
    Bottleneck,
    bottleneck_census,
    classify_population,
)
from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.hardware import HardwareConfig, pai_default_hardware
from ..core.population import (
    COMPONENT_KEYS,
    HARDWARE_KEYS,
    FeatureArrays,
    batch_breakdowns,
)
from ..core.timemodel import PAPER_MODEL_OPTIONS, ModelOptions
from ..runtime.fingerprint import fingerprint
from ..trace.schema import JobRecord
from ..trace.statistics import EmpiricalCDF, StreamingCDF

__all__ = [
    "AGGREGATION_LEVELS",
    "CDF_METRICS",
    "DEFAULT_SKETCH_CAPACITY",
    "ShardStats",
    "batch_reference",
    "payload_leaves",
]

#: The two aggregation levels the paper reports throughout.
AGGREGATION_LEVELS: Tuple[str, ...] = ("job", "cnode")

#: Metrics served as streaming CDFs by ``/cdf/<metric>``.
CDF_METRICS: Tuple[str, ...] = COMPONENT_KEYS + ("step_time", "num_cnodes")

#: COMPONENT_KEYS order -> census label, mirroring ``core.classify``.
_COMPONENT_LABELS: Tuple[Bottleneck, ...] = (
    Bottleneck.INPUT_IO,
    Bottleneck.COMMUNICATION,
    Bottleneck.COMPUTE,
    Bottleneck.MEMORY,
)

#: Default per-metric sketch capacity: exact CDFs up to this many jobs
#: per (shard, metric, level), bounded memory beyond.
DEFAULT_SKETCH_CAPACITY = 8192


def _zero_levels(keys: Iterable[str]) -> Dict[str, Dict[str, float]]:
    names = tuple(keys)
    return {
        level: {key: 0.0 for key in names} for level in AGGREGATION_LEVELS
    }


class ShardStats:
    """Online, mergeable statistics over a stream of job records."""

    def __init__(
        self,
        hardware: Optional[HardwareConfig] = None,
        efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
        options: ModelOptions = PAPER_MODEL_OPTIONS,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
    ) -> None:
        self.hardware = hardware if hardware is not None else pai_default_hardware()
        self.efficiency = efficiency
        self.options = options
        self.sketch_capacity = int(sketch_capacity)
        self.job_count = 0
        self.cnode_total = 0.0
        self.arch_jobs: Dict[str, int] = {}
        self.arch_cnodes: Dict[str, float] = {}
        self.fraction_sums = _zero_levels(COMPONENT_KEYS)
        self.hardware_sums = _zero_levels(HARDWARE_KEYS)
        self.census_sums = _zero_levels(str(label) for label in Bottleneck)
        self.sketches: Dict[Tuple[str, str], StreamingCDF] = {
            (metric, level): StreamingCDF(capacity=self.sketch_capacity)
            for metric in CDF_METRICS
            for level in AGGREGATION_LEVELS
        }

    # ---- identity --------------------------------------------------

    @property
    def config_fingerprint(self) -> str:
        """Digest of the model configuration; merge compatibility key."""
        return fingerprint(
            self.hardware,
            self.efficiency,
            self.options,
            {"sketch_capacity": self.sketch_capacity},
        )

    # ---- ingestion -------------------------------------------------

    def observe(self, jobs: Sequence[JobRecord]) -> int:
        """Fold one batch of job records into the running statistics.

        The batch is evaluated through the vectorized model path
        (:func:`repro.core.population.batch_breakdowns`), so ingesting N
        jobs in B batches costs the same arithmetic as one batch of N.
        Returns the number of jobs ingested.
        """
        batch = list(jobs)
        if not batch:
            return 0
        arrays = FeatureArrays.from_workloads(job.features for job in batch)
        breakdown = batch_breakdowns(
            arrays, self.hardware, self.efficiency, self.options
        )
        cnodes = arrays.num_cnodes.astype(float)
        level_weights = {"job": np.ones(len(batch)), "cnode": cnodes}

        self.job_count += len(batch)
        self.cnode_total += float(cnodes.sum())
        for architecture in arrays.architectures_present():
            mask = arrays.mask_of(architecture)
            label = str(architecture)
            self.arch_jobs[label] = self.arch_jobs.get(label, 0) + int(
                mask.sum()
            )
            self.arch_cnodes[label] = self.arch_cnodes.get(label, 0.0) + float(
                cnodes[mask].sum()
            )

        fractions = breakdown.fractions()
        shares = breakdown.hardware_shares()
        step_times = breakdown.total_for(self.options.overlap)
        metric_samples = dict(fractions)
        metric_samples["step_time"] = step_times
        metric_samples["num_cnodes"] = cnodes
        for level, weights in level_weights.items():
            for key in COMPONENT_KEYS:
                self.fraction_sums[level][key] += float(
                    np.dot(fractions[key], weights)
                )
            for key in HARDWARE_KEYS:
                self.hardware_sums[level][key] += float(
                    np.dot(shares[key], weights)
                )
            for metric in CDF_METRICS:
                self.sketches[(metric, level)].update_many(
                    metric_samples[metric],
                    None if level == "job" else weights,
                )

        # Vectorized bottleneck labeling; the scalar path in
        # ``core.classify`` breaks ties by COMPONENT_KEYS order, and so
        # does argmax over the same stacking order.
        stacked = np.stack([fractions[key] for key in COMPONENT_KEYS])
        dominant = np.argmax(stacked, axis=0)
        dominant_share = np.take_along_axis(
            stacked, dominant[np.newaxis, :], axis=0
        )[0]
        balanced = dominant_share < DOMINANCE_THRESHOLD
        for level, weights in level_weights.items():
            sums = self.census_sums[level]
            for code, label in enumerate(_COMPONENT_LABELS):
                mask = (dominant == code) & ~balanced
                sums[str(label)] += float(weights[mask].sum())
            sums[str(Bottleneck.BALANCED)] += float(weights[balanced].sum())
        return len(batch)

    # ---- merging ---------------------------------------------------

    def update_from(self, other: "ShardStats") -> None:
        """Fold another shard's statistics into this one, in place."""
        if other.config_fingerprint != self.config_fingerprint:
            raise ValueError(
                "cannot merge shard statistics computed under different "
                "model configurations"
            )
        self.job_count += other.job_count
        self.cnode_total += other.cnode_total
        for label, count in other.arch_jobs.items():
            self.arch_jobs[label] = self.arch_jobs.get(label, 0) + count
        for label, cnodes in other.arch_cnodes.items():
            self.arch_cnodes[label] = (
                self.arch_cnodes.get(label, 0.0) + cnodes
            )
        for mine, theirs in (
            (self.fraction_sums, other.fraction_sums),
            (self.hardware_sums, other.hardware_sums),
            (self.census_sums, other.census_sums),
        ):
            for level in AGGREGATION_LEVELS:
                for key, value in theirs[level].items():
                    mine[level][key] += value
        for key, sketch in other.sketches.items():
            self.sketches[key] = self.sketches[key].merge(sketch)

    def copy(self) -> "ShardStats":
        """A deep, independent snapshot of this shard's statistics."""
        duplicate = ShardStats(
            hardware=self.hardware,
            efficiency=self.efficiency,
            options=self.options,
            sketch_capacity=self.sketch_capacity,
        )
        duplicate.job_count = self.job_count
        duplicate.cnode_total = self.cnode_total
        duplicate.arch_jobs = dict(self.arch_jobs)
        duplicate.arch_cnodes = dict(self.arch_cnodes)
        duplicate.fraction_sums = {
            level: dict(sums) for level, sums in self.fraction_sums.items()
        }
        duplicate.hardware_sums = {
            level: dict(sums) for level, sums in self.hardware_sums.items()
        }
        duplicate.census_sums = {
            level: dict(sums) for level, sums in self.census_sums.items()
        }
        duplicate.sketches = {
            key: sketch.copy() for key, sketch in self.sketches.items()
        }
        return duplicate

    @classmethod
    def merged(cls, shards: Iterable["ShardStats"]) -> "ShardStats":
        """Combine shard statistics into one whole-population view."""
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge zero shards")
        combined = shards[0].copy()
        for shard in shards[1:]:
            combined.update_from(shard)
        return combined

    # ---- read side -------------------------------------------------

    def _total_weight(self, level: str) -> float:
        if level not in AGGREGATION_LEVELS:
            raise KeyError(f"unknown aggregation level: {level!r}")
        return float(self.job_count if level == "job" else self.cnode_total)

    def average_fractions(self, level: str = "job") -> Dict[str, float]:
        """Average component shares (one Fig. 7 column), incrementally."""
        total = self._total_weight(level)
        if total <= 0:
            raise ValueError("population is empty")
        return {
            key: self.fraction_sums[level][key] / total
            for key in COMPONENT_KEYS
        }

    def average_hardware_shares(self, level: str = "job") -> Dict[str, float]:
        """Average hardware-component shares (Fig. 8(a)), incrementally."""
        total = self._total_weight(level)
        if total <= 0:
            raise ValueError("population is empty")
        return {
            key: self.hardware_sums[level][key] / total
            for key in HARDWARE_KEYS
        }

    def census(self, level: str = "job") -> Dict[str, float]:
        """Bottleneck-label population shares, incrementally."""
        total = self._total_weight(level)
        if total <= 0:
            raise ValueError("population is empty")
        return {
            label: value / total
            for label, value in self.census_sums[level].items()
        }

    def cdf(self, metric: str, level: str = "job") -> EmpiricalCDF:
        """The sketched CDF of one metric at one aggregation level."""
        if metric not in CDF_METRICS:
            raise KeyError(f"unknown CDF metric: {metric!r}")
        if level not in AGGREGATION_LEVELS:
            raise KeyError(f"unknown aggregation level: {level!r}")
        return self.sketches[(metric, level)].to_cdf()

    def reference_payload(self) -> Dict[str, object]:
        """All aggregates as one JSON-native dict.

        The same shape as :func:`batch_reference`, so a drained service
        and the one-shot batch path can be compared leaf by leaf.
        """
        payload: Dict[str, object] = {
            "jobs": self.job_count,
            "cnodes": self.cnode_total,
            "architectures": {
                label: self.arch_jobs[label] for label in sorted(self.arch_jobs)
            },
            "fractions": {},
            "hardware_shares": {},
            "census": {},
            "quantiles": {},
        }
        for level in AGGREGATION_LEVELS:
            payload["fractions"][level] = self.average_fractions(level)
            payload["hardware_shares"][level] = self.average_hardware_shares(
                level
            )
            payload["census"][level] = self.census(level)
        for metric in CDF_METRICS:
            cdf = self.cdf(metric, "job")
            payload["quantiles"][metric] = {
                "p50": cdf.quantile(0.50),
                "p90": cdf.quantile(0.90),
                "p99": cdf.quantile(0.99),
            }
        return payload


def batch_reference(
    jobs: Sequence[JobRecord],
    hardware: Optional[HardwareConfig] = None,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> Dict[str, object]:
    """The one-shot batch-path aggregates over a materialized trace.

    Computed with exactly the primitives the ``report`` experiments use:
    :func:`~repro.core.population.batch_breakdowns` for shares,
    ``core.classify`` for the census and
    :meth:`EmpiricalCDF.from_samples` for distributions.  The serve
    acceptance check is that a drained service's
    :meth:`ShardStats.reference_payload` matches this, leaf by leaf.
    """
    records = list(jobs)
    if not records:
        raise ValueError("population is empty")
    if hardware is None:
        hardware = pai_default_hardware()
    arrays = FeatureArrays.from_workloads(job.features for job in records)
    breakdown = batch_breakdowns(arrays, hardware, efficiency, options)
    cnodes = arrays.num_cnodes.astype(float)
    classified = classify_population(
        [job.features for job in records], hardware, efficiency, options
    )
    arch_jobs: Dict[str, int] = {}
    for architecture in arrays.architectures_present():
        arch_jobs[str(architecture)] = int(arrays.mask_of(architecture).sum())

    fractions = breakdown.fractions()
    step_times = breakdown.total_for(options.overlap)
    metric_samples: Dict[str, np.ndarray] = dict(fractions)
    metric_samples["step_time"] = step_times
    metric_samples["num_cnodes"] = cnodes

    payload: Dict[str, object] = {
        "jobs": len(records),
        "cnodes": float(cnodes.sum()),
        "architectures": {
            label: arch_jobs[label] for label in sorted(arch_jobs)
        },
        "fractions": {},
        "hardware_shares": {},
        "census": {},
        "quantiles": {},
    }
    for level in AGGREGATION_LEVELS:
        cnode_level = level == "cnode"
        payload["fractions"][level] = breakdown.average_fractions(cnode_level)
        payload["hardware_shares"][level] = breakdown.average_hardware_shares(
            cnode_level
        )
        payload["census"][level] = {
            str(label): share
            for label, share in bottleneck_census(
                classified, cnode_level=cnode_level
            ).items()
        }
    for metric in CDF_METRICS:
        cdf = EmpiricalCDF.from_samples(metric_samples[metric])
        payload["quantiles"][metric] = {
            "p50": cdf.quantile(0.50),
            "p90": cdf.quantile(0.90),
            "p99": cdf.quantile(0.99),
        }
    return payload


def payload_leaves(
    payload: Dict[str, object], prefix: str = ""
) -> List[Tuple[str, object]]:
    """Flatten a nested payload into sorted (dotted-path, value) pairs.

    The comparison helper the equivalence tests and the CI smoke job use
    to diff a served payload against :func:`batch_reference`.
    """
    leaves: List[Tuple[str, object]] = []
    for key in sorted(payload):
        path = f"{prefix}.{key}" if prefix else str(key)
        value = payload[key]
        if isinstance(value, dict):
            leaves.extend(payload_leaves(value, path))
        else:
            leaves.append((path, value))
    return leaves
