"""Sharded population state: concurrent ingestion, consistent reads.

The resident service splits the live population across N shards, each a
:class:`~repro.serve.stats.ShardStats` guarded by its own lock.  Writers
(the replayer, ``POST /ingest``) route each job to ``job_id % N`` and
only ever hold one shard lock at a time, so concurrent ingest batches
proceed in parallel across shards and readers never wait on a global
write lock.

Reads go through :meth:`ShardedState.snapshot`: each shard is copied
under its lock (a bounded, cheap operation -- dict copies plus sketch
buffer copies), then the copies are merged *outside* every lock into an
immutable :class:`StatsSnapshot`.  A snapshot is internally consistent
by construction -- every aggregate in it derives from the same frozen
shard states -- and snapshots taken later can only see more jobs, never
fewer, because shard statistics only grow.  Merged snapshots are memoized
on the vector of per-shard versions, so an idle service answers every
query from the same cached merge until the next ingest batch lands.
Merging is single-flight with stale-while-revalidate: one reader pays
for each new merge while concurrent readers reuse the previous cached
snapshot instead of piling up behind the merge lock.

Alongside its version counter, every shard maintains a running SHA-256
digest over the canonical serialization of the jobs it has ingested, in
order.  The digest vector in a snapshot therefore identifies the
*content* of the population, not just how many batches arrived -- two
different traces that happen to reach the same batch counts still get
distinct digests, which is what lets the query layer key persistent
caches by snapshot without ever serving one population's numbers for
another.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.hardware import HardwareConfig
from ..core.timemodel import PAPER_MODEL_OPTIONS, ModelOptions
from ..obs import get_obs
from ..trace.schema import JobRecord
from ..trace.serialization import job_to_dict
from .stats import DEFAULT_SKETCH_CAPACITY, ShardStats

__all__ = ["ShardedState", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable merged view of the population at one generation.

    ``generation`` is the total number of ingest batches folded in;
    ``versions`` records each shard's batch count at snapshot time, and
    ``digests`` each shard's running content digest -- together they
    identify both how much *and which* data the snapshot describes.
    The merged :class:`ShardStats` must be treated as read-only.
    """

    stats: ShardStats = field(repr=False)
    generation: int
    versions: Tuple[int, ...]
    digests: Tuple[str, ...]

    @property
    def job_count(self) -> int:
        return self.stats.job_count


def _job_digest_bytes(job: JobRecord) -> bytes:
    """The canonical byte serialization of one job for content digests.

    Built on the trace schema's own dict form with sorted keys, so the
    digest chain depends only on the per-shard job sequence -- not on
    batching, dataclass repr, or dict insertion order.
    """
    return json.dumps(job_to_dict(job), sort_keys=True).encode("utf-8")


class _Shard:
    """One lock-guarded slice of the population."""

    __slots__ = ("lock", "stats", "version", "digest")

    def __init__(self, stats: ShardStats) -> None:
        self.lock = threading.Lock()
        self.stats = stats
        self.version = 0
        self.digest = hashlib.sha256()


class ShardedState:
    """N population shards with lock-free-for-readers merged snapshots."""

    def __init__(
        self,
        num_shards: int = 4,
        hardware: Optional[HardwareConfig] = None,
        efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
        options: ModelOptions = PAPER_MODEL_OPTIONS,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)
        self._shards = [
            _Shard(
                ShardStats(
                    hardware=hardware,
                    efficiency=efficiency,
                    options=options,
                    sketch_capacity=sketch_capacity,
                )
            )
            for _ in range(self.num_shards)
        ]
        self._snapshot_lock = threading.Lock()
        self._merge_lock = threading.Lock()
        self._cached_snapshot: Optional[StatsSnapshot] = None

    # ---- write side ------------------------------------------------

    def ingest(self, jobs: Sequence[JobRecord]) -> int:
        """Route a batch to its shards and fold it in; returns the count.

        Each shard lock is held only while that shard's slice of the
        batch is folded in, so ingestion interleaves with snapshots and
        with other writers at shard granularity.
        """
        batch = list(jobs)
        if not batch:
            return 0
        by_shard: Dict[int, List[JobRecord]] = {}
        for job in batch:
            by_shard.setdefault(job.job_id % self.num_shards, []).append(job)
        obs = get_obs()
        with obs.trace("serve.ingest", jobs=len(batch), shards=len(by_shard)):
            for index, shard_jobs in sorted(by_shard.items()):
                shard = self._shards[index]
                with shard.lock:
                    shard.stats.observe(shard_jobs)
                    for job in shard_jobs:
                        shard.digest.update(_job_digest_bytes(job))
                    shard.version += 1
        obs.metrics.counter("serve.ingest.jobs").inc(len(batch))
        obs.metrics.counter("serve.ingest.batches").inc()
        return len(batch)

    # ---- read side -------------------------------------------------

    @property
    def generation(self) -> int:
        """Total ingest batches folded in so far (monotone)."""
        # repro: ignore[lock-discipline] lock-free read of a monotone
        # counter; staleness is bounded and torn reads are impossible
        return sum(shard.version for shard in self._shards)

    @property
    def job_count(self) -> int:
        """Jobs ingested so far (monotone)."""
        return sum(shard.stats.job_count for shard in self._shards)

    def snapshot(self) -> StatsSnapshot:
        """A consistent merged view of all shards.

        Shard copies are taken one lock at a time; the merge never
        holds a shard lock, so it does not block ingestion.  Because
        shard statistics only grow, the merged view is monotone across
        calls: a later snapshot never reports fewer jobs than an
        earlier one.  The merge is memoized on the per-shard version
        vector and *single-flight*: when many readers observe the same
        new generation at once, exactly one of them pays for the merge
        and the rest reuse it -- without that, a thundering herd of
        identical O(sketch capacity) merges starves live ingestion.
        While a merge is in flight, other readers are served the
        previous cached snapshot instead of queuing behind it
        (stale-while-revalidate); that stays monotone because the
        cache only ever advances in generation.
        """
        # repro: ignore[lock-discipline] optimistic fast path by design
        # (stale-while-revalidate, see docstring): the cache reference
        # swap is atomic and only ever advances in generation
        cached = self._cached_snapshot
        # repro: ignore[lock-discipline] monotone counters; a torn
        # version vector only causes one redundant merge, never a wrong
        # result
        versions = tuple(shard.version for shard in self._shards)
        if cached is not None and cached.versions == versions:
            get_obs().metrics.counter("serve.snapshot.memo_hits").inc()
            return cached
        if not self._merge_lock.acquire(blocking=False):
            if cached is not None:
                get_obs().metrics.counter("serve.snapshot.stale_served").inc()
                return cached
            # No snapshot exists yet; wait for the in-flight merge.
            self._merge_lock.acquire()
        try:
            # Whoever held the lock before us may have merged a view
            # fresh enough to reuse.
            # repro: ignore[lock-discipline] double-check under the
            # merge lock: _cached_snapshot writers all hold _merge_lock,
            # so this read is ordered after any in-flight publish
            cached = self._cached_snapshot
            # repro: ignore[lock-discipline] monotone counters; see the
            # fast-path note above
            versions = tuple(shard.version for shard in self._shards)
            if cached is not None and cached.versions == versions:
                get_obs().metrics.counter("serve.snapshot.memo_hits").inc()
                return cached
            copies: List[ShardStats] = []
            versions_at_copy: List[int] = []
            digests_at_copy: List[str] = []
            for shard in self._shards:
                with shard.lock:
                    copies.append(shard.stats.copy())
                    versions_at_copy.append(shard.version)
                    digests_at_copy.append(shard.digest.hexdigest())
            obs = get_obs()
            with obs.trace("serve.snapshot.merge", shards=self.num_shards):
                merged = ShardStats.merged(copies)
            snapshot = StatsSnapshot(
                stats=merged,
                generation=sum(versions_at_copy),
                versions=tuple(versions_at_copy),
                digests=tuple(digests_at_copy),
            )
            with self._snapshot_lock:
                previous = self._cached_snapshot
                # Keep whichever snapshot saw more ingest batches.
                if (
                    previous is None
                    or previous.generation <= snapshot.generation
                ):
                    self._cached_snapshot = snapshot
        finally:
            self._merge_lock.release()
        obs.metrics.counter("serve.snapshot.merges").inc()
        return snapshot
