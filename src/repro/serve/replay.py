"""Trace replay: jobs arrive over (simulated) time, not all at once.

The batch path materializes a whole trace and analyzes it once; a
resident service sees jobs the way PAI does -- as a stream ordered by
submission time.  :class:`TraceReplayer` turns any iterable of
:class:`~repro.trace.schema.JobRecord` (a generator, or
:func:`repro.trace.serialization.iter_trace` streaming from disk) into
that stream: records are grouped by ``submit_day``, chopped into
bounded batches, and delivered to a sink on a simulated clock.

``seconds_per_day`` maps one simulated trace day to wall-clock seconds
(a speedup knob: the paper's 51-day window replays in ~5 s at 0.1);
``0`` replays as fast as the sink can ingest.  The clock and sleep
functions are injectable so tests replay deterministically without
sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..obs import get_obs
from ..trace.schema import JobRecord, iter_day_groups

__all__ = ["ReplayBatch", "TraceReplayer"]


@dataclass(frozen=True)
class ReplayBatch:
    """One delivered slice of the stream: jobs sharing a submit day."""

    jobs: Sequence[JobRecord]
    day: int
    sequence: int

    def __len__(self) -> int:
        return len(self.jobs)


class TraceReplayer:
    """Replay a time-ordered job stream into a sink, batch by batch."""

    def __init__(
        self,
        jobs: Iterable[JobRecord],
        batch_size: int = 500,
        seconds_per_day: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if seconds_per_day < 0:
            raise ValueError("seconds_per_day must be non-negative")
        self._jobs = jobs
        self.batch_size = int(batch_size)
        self.seconds_per_day = float(seconds_per_day)
        self._clock = clock
        self._sleep = sleep
        self._stop = threading.Event()
        self.delivered = 0

    def stop(self) -> None:
        """Ask a running replay to finish after the current batch."""
        self._stop.set()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def _batches(self) -> Iterator[ReplayBatch]:
        """Day-grouped, size-bounded batches, in stream order.

        Day grouping is shared with the day-batched scheduling engine
        (:func:`repro.trace.schema.iter_day_groups`); each day's run is
        then chopped into ``batch_size`` chunks.
        """
        sequence = 0
        for day, group in iter_day_groups(self._jobs):
            for start in range(0, len(group), self.batch_size):
                yield ReplayBatch(
                    tuple(group[start : start + self.batch_size]),
                    day,
                    sequence,
                )
                sequence += 1

    def replay(self, sink: Callable[[Sequence[JobRecord]], object]) -> int:
        """Deliver the stream into ``sink``; returns jobs delivered.

        Runs synchronously -- callers wanting live ingestion alongside a
        serving thread run this in its own thread.  Honors :meth:`stop`
        between batches, so shutdown never tears a batch in half.
        """
        obs = get_obs()
        start = self._clock()
        first_day: Optional[int] = None
        for batch in self._batches():
            if self._stop.is_set():
                break
            if first_day is None:
                first_day = batch.day
            if self.seconds_per_day > 0:
                due = start + (batch.day - first_day) * self.seconds_per_day
                delay = due - self._clock()
                if delay > 0:
                    self._sleep(delay)
            if self._stop.is_set():
                break
            with obs.trace(
                "serve.replay.batch",
                jobs=len(batch),
                day=batch.day,
                sequence=batch.sequence,
            ):
                sink(batch.jobs)
            self.delivered += len(batch)
            obs.metrics.counter("serve.replay.jobs").inc(len(batch))
        obs.event(
            "serve.replay.done",
            jobs=self.delivered,
            stopped=self._stop.is_set(),
            wall_s=self._clock() - start,
        )
        return self.delivered
