"""Op-level deep-learning model substrate and Table IV case studies."""

from ..core.architectures import Architecture
from .builders import (
    RESNET_CONFIGS,
    all_case_studies,
    build_bert,
    build_gcn,
    build_multi_interests,
    build_nmt,
    build_resnet,
    build_resnet50,
    build_speech,
)
from .cards import LayerGroupStats, group_stats, render_model_card
from .features_from_graph import Deployment, features_for, ring_sync_bytes, sync_traffic
from .graph import GraphTotals, ModelGraph
from .ops import (
    Op,
    OpKind,
    activation_op,
    backward_ops,
    batchnorm_op,
    conv2d_op,
    elementwise_op,
    embedding_lookup_op,
    layernorm_op,
    lstm_layer_ops,
    matmul_op,
    pooling_op,
    softmax_op,
)
from .optimizers import ADAGRAD, ADAM, MOMENTUM, SGD, Optimizer

__all__ = [
    "ADAGRAD",
    "ADAM",
    "Deployment",
    "GraphTotals",
    "LayerGroupStats",
    "MOMENTUM",
    "ModelGraph",
    "Op",
    "OpKind",
    "Optimizer",
    "RESNET_CONFIGS",
    "SGD",
    "activation_op",
    "all_case_studies",
    "backward_ops",
    "batchnorm_op",
    "build_bert",
    "build_gcn",
    "build_multi_interests",
    "build_nmt",
    "build_resnet",
    "build_resnet50",
    "build_speech",
    "case_study_deployments",
    "case_study_features",
    "conv2d_op",
    "elementwise_op",
    "embedding_lookup_op",
    "features_for",
    "group_stats",
    "layernorm_op",
    "lstm_layer_ops",
    "matmul_op",
    "pooling_op",
    "render_model_card",
    "ring_sync_bytes",
    "softmax_op",
    "sync_traffic",
]


def case_study_deployments() -> dict:
    """The Table IV "System Architecture" column as deployments.

    ResNet50/NMT/BERT fit in GPU memory and use AllReduce-Local on one
    8-GPU server; Speech trains 1w1g; Multi-Interests requires
    PS/Worker (239 GB of embeddings); GCN uses PEARL on 8 GPUs.
    """
    return {
        "ResNet50": Deployment(Architecture.ALLREDUCE_LOCAL, num_cnodes=8),
        "NMT": Deployment(Architecture.ALLREDUCE_LOCAL, num_cnodes=8),
        "BERT": Deployment(
            Architecture.ALLREDUCE_LOCAL, num_cnodes=8, embedding_sync_dense=True
        ),
        "Speech": Deployment(Architecture.SINGLE, num_cnodes=1),
        "Multi-Interests": Deployment(Architecture.PS_WORKER, num_cnodes=32),
        "GCN": Deployment(Architecture.PEARL, num_cnodes=8),
    }


def case_study_features() -> dict:
    """Analytical-model feature records for all six case studies."""
    deployments = case_study_deployments()
    return {
        name: features_for(graph, deployments[name])
        for name, graph in all_case_studies().items()
    }
