"""Derive analytical-model features from a model graph + deployment.

This is the bridge between the op-level substrate and the Sec. II-B
model: given a :class:`~repro.graphs.graph.ModelGraph` and a deployment
(architecture + cNode count), produce the
:class:`~repro.core.features.WorkloadFeatures` record the analytical
model consumes.

Synchronization-traffic conventions (calibrated to reproduce the
Table V "Network Traffic" column exactly):

* **AllReduce (local or cluster)** -- dense gradients ride a ring
  AllReduce: per-node traffic (send + receive) is
  ``2 * 2(n-1)/n * dense_trainable_bytes``.  Sparse embedding gradients
  are exchanged as gathered slices (``embedding_access_bytes``, already
  a round-trip volume).  Models whose embedding gradients are dense
  over a small vocabulary (BERT) fold the table into the dense part.
* **PS/Worker and 1wng (centralized)** -- workers pull variables and
  push gradients: ``2 * dense_trainable_bytes`` plus the accessed
  embedding round trip.
* **PEARL** -- dense variables ride the ring AllReduce; the partitioned
  embedding round trip is recorded in ``embedding_traffic_bytes`` so
  the time model can apply partitioned-gather parallelism.
* **1w1g** -- no weight traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from .graph import ModelGraph

__all__ = ["Deployment", "ring_sync_bytes", "sync_traffic", "features_for"]


@dataclass(frozen=True)
class Deployment:
    """Where and how a model trains.

    Attributes:
        architecture: The Table II architecture.
        num_cnodes: GPU replicas.
        embedding_sync_dense: Fold embedding gradients into the dense
            AllReduce volume (see module docs; True for BERT-style
            small-vocabulary tables).
        num_parameter_servers: Explicit PS-fleet size; an
            under-provisioned fleet throttles the Ethernet hop (see
            :mod:`repro.sim.ps`).
    """

    architecture: Architecture
    num_cnodes: int = 1
    embedding_sync_dense: bool = False
    #: PS-fleet size for PS/Worker deployments; None means one shard
    #: per worker (the well-provisioned default the paper assumes).
    num_parameter_servers: int = None

    def __post_init__(self) -> None:
        if self.num_cnodes < 1:
            raise ValueError("num_cnodes must be at least 1")
        if (
            self.num_parameter_servers is not None
            and self.num_parameter_servers < 1
        ):
            raise ValueError("num_parameter_servers must be at least 1")

    @property
    def ps_fleet_size(self) -> int:
        """Effective PS count (defaults to one shard per worker)."""
        if self.num_parameter_servers is None:
            return self.num_cnodes
        return self.num_parameter_servers


def ring_sync_bytes(trainable_bytes: float, num_cnodes: int) -> float:
    """Per-node send+receive volume of a ring AllReduce.

    ``2 * 2(n-1)/n * S``: each of the reduce-scatter and all-gather
    phases moves ``(n-1)/n * S`` bytes out of and into every node.
    """
    if num_cnodes < 1:
        raise ValueError("num_cnodes must be at least 1")
    if num_cnodes == 1:
        return 0.0
    return 4.0 * (num_cnodes - 1) / num_cnodes * trainable_bytes


def sync_traffic(graph: ModelGraph, deployment: Deployment) -> tuple:
    """Per-cNode, per-step ``(total, embedding_part)`` traffic bytes."""
    arch = deployment.architecture
    n = deployment.num_cnodes
    dense = graph.dense_trainable_bytes
    sparse = graph.embedding_access_bytes
    if deployment.embedding_sync_dense:
        dense += graph.embedding_trainable_bytes
        sparse = 0.0

    if arch is Architecture.SINGLE:
        return 0.0, 0.0
    if arch in (Architecture.ALLREDUCE_LOCAL, Architecture.ALLREDUCE_CLUSTER):
        return ring_sync_bytes(dense, n) + sparse, 0.0
    if arch in (Architecture.PS_WORKER, Architecture.LOCAL_CENTRALIZED):
        return 2.0 * dense + sparse, 0.0
    if arch is Architecture.PEARL:
        return ring_sync_bytes(dense, n) + sparse, sparse
    raise AssertionError(f"unhandled architecture: {arch!r}")


def features_for(graph: ModelGraph, deployment: Deployment) -> WorkloadFeatures:
    """Build the analytical-model feature record for one deployment."""
    total_traffic, embedding_traffic = sync_traffic(graph, deployment)
    return WorkloadFeatures(
        name=graph.name,
        architecture=deployment.architecture,
        num_cnodes=deployment.num_cnodes,
        batch_size=graph.batch_size,
        flop_count=graph.flop_count,
        memory_access_bytes=graph.memory_access_bytes,
        input_bytes=graph.input_bytes,
        weight_traffic_bytes=total_traffic,
        dense_weight_bytes=graph.dense_weight_bytes,
        embedding_weight_bytes=graph.embedding_weight_bytes,
        embedding_traffic_bytes=embedding_traffic,
    )
