"""Model graphs: op collections with aggregate resource accounting.

A :class:`ModelGraph` is the forward op list of one model at a given
batch size, plus enough metadata (input volume, sparse-access volume,
optimizer) to derive every Table IV / Table V quantity and, through
:mod:`repro.graphs.features_from_graph`, the analytical model's
:class:`~repro.core.features.WorkloadFeatures`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Tuple

from .ops import Op, OpKind, backward_ops
from .optimizers import MOMENTUM, Optimizer

__all__ = ["GraphTotals", "ModelGraph"]


@dataclass(frozen=True)
class GraphTotals:
    """Aggregate resource requirements of one op list."""

    flops: float
    compute_bound_flops: float
    memory_access_bytes: float
    memory_bound_access_bytes: float
    op_count: int

    @staticmethod
    def of(ops: Iterable[Op]) -> "GraphTotals":
        flops = 0.0
        cb_flops = 0.0
        access = 0.0
        mb_access = 0.0
        count = 0
        for op in ops:
            count += 1
            flops += op.flops
            access += op.memory_access_bytes
            if op.kind is OpKind.COMPUTE_BOUND:
                cb_flops += op.flops
            else:
                mb_access += op.memory_access_bytes
        return GraphTotals(
            flops=flops,
            compute_bound_flops=cb_flops,
            memory_access_bytes=access,
            memory_bound_access_bytes=mb_access,
            op_count=count,
        )


@dataclass(frozen=True)
class ModelGraph:
    """A model's forward graph at a fixed batch size.

    Attributes:
        name: Model name (matches Table IV rows for the case studies).
        domain: Application domain label (Table IV "Domain" column).
        forward: Forward-pass op list.
        batch_size: Per-replica minibatch size.
        input_bytes_per_sample: Host-to-device input volume per sample
            (fp32 image / spectrogram bytes, or id bytes for sparse
            models) -- drives the Table V "Memory Copy (PCIe)" column.
        embedding_access_bytes: Bytes of embedding rows *accessed* per
            step over the whole batch (one direction).  This is the
            sparse traffic PEARL exploits; zero for embedding-free
            models.
        optimizer: Determines the at-rest weight footprint multiplier.
    """

    name: str
    domain: str
    forward: Tuple[Op, ...]
    batch_size: int
    input_bytes_per_sample: float
    embedding_access_bytes: float = 0.0
    optimizer: Optimizer = MOMENTUM
    extra_dense_param_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.input_bytes_per_sample < 0:
            raise ValueError("input_bytes_per_sample must be non-negative")
        if self.embedding_access_bytes < 0:
            raise ValueError("embedding_access_bytes must be non-negative")
        if self.extra_dense_param_bytes < 0:
            raise ValueError("extra_dense_param_bytes must be non-negative")
        if not self.forward:
            raise ValueError("model graph has no operations")

    # ---- op lists -------------------------------------------------

    @property
    def backward(self) -> Tuple[Op, ...]:
        """Backward-pass ops synthesized from the forward list."""
        return tuple(backward_ops(list(self.forward)))

    @property
    def training_step(self) -> Tuple[Op, ...]:
        """Forward followed by backward: the ops of one training step."""
        return self.forward + self.backward

    # ---- parameters ----------------------------------------------

    @property
    def dense_trainable_bytes(self) -> float:
        """Trainable dense-variable bytes (no optimizer slots)."""
        dense = sum(
            op.param_bytes for op in self.forward if not op.is_embedding
        )
        return dense + self.extra_dense_param_bytes

    @property
    def embedding_trainable_bytes(self) -> float:
        """Trainable embedding-table bytes (no optimizer slots)."""
        return sum(op.param_bytes for op in self.forward if op.is_embedding)

    @property
    def dense_weight_bytes(self) -> float:
        """Dense weights at rest, optimizer slots included (Table IV)."""
        return self.optimizer.at_rest_bytes(self.dense_trainable_bytes)

    @property
    def embedding_weight_bytes(self) -> float:
        """Embedding weights at rest, optimizer slots included."""
        return self.optimizer.at_rest_bytes(self.embedding_trainable_bytes)

    @property
    def weight_bytes(self) -> float:
        """Total at-rest model footprint (Fig. 6(b) scale)."""
        return self.dense_weight_bytes + self.embedding_weight_bytes

    # ---- per-step requirements (Table V) ---------------------------

    @property
    def forward_totals(self) -> GraphTotals:
        return GraphTotals.of(self.forward)

    @property
    def training_totals(self) -> GraphTotals:
        return GraphTotals.of(self.training_step)

    @property
    def flop_count(self) -> float:
        """Compute-bound FLOPs of one training step (Table V)."""
        return self.training_totals.compute_bound_flops

    @property
    def memory_access_bytes(self) -> float:
        """Memory-bound access bytes of one training step (Table V)."""
        return self.training_totals.memory_bound_access_bytes

    @property
    def input_bytes(self) -> float:
        """Host-to-device input volume of one step (Table V PCIe copy)."""
        return self.input_bytes_per_sample * self.batch_size

    # ---- transformations -------------------------------------------

    def with_forward(self, forward: Iterable[Op]) -> "ModelGraph":
        """A copy with a transformed forward op list (optimization passes)."""
        return replace(self, forward=tuple(forward))

    def with_batch_size(self, batch_size: int, scale_ops: bool = True) -> "ModelGraph":
        """A copy rescaled to a different batch size.

        Per-step FLOPs, memory access and embedding-access volumes scale
        linearly in batch size (parameters do not).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        factor = batch_size / self.batch_size
        forward: List[Op] = list(self.forward)
        if scale_ops:
            forward = [
                replace(
                    op,
                    flops=op.flops * factor,
                    memory_access_bytes=op.memory_access_bytes * factor,
                )
                for op in forward
            ]
        return replace(
            self,
            forward=tuple(forward),
            batch_size=batch_size,
            embedding_access_bytes=self.embedding_access_bytes * factor,
        )

    def summary(self) -> dict:
        """A Table IV/V-shaped summary of this model."""
        return {
            "name": self.name,
            "domain": self.domain,
            "batch_size": self.batch_size,
            "dense_weight_bytes": self.dense_weight_bytes,
            "embedding_weight_bytes": self.embedding_weight_bytes,
            "flop_count": self.flop_count,
            "memory_access_bytes": self.memory_access_bytes,
            "input_bytes": self.input_bytes,
            "op_count": len(self.forward),
        }
