"""Optimizer state accounting.

Table IV notes that the reported parameter sizes "include both the
trainable variables and the optimization-related variables, such as
momentums".  Each optimizer therefore contributes a multiplier on the
at-rest weight footprint: SGD keeps only the variable itself, momentum
adds one slot, Adam adds two.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Optimizer", "SGD", "MOMENTUM", "ADAM", "ADAGRAD"]


@dataclass(frozen=True)
class Optimizer:
    """An optimizer described by its per-variable slot count.

    Attributes:
        name: Identifier used in reports.
        slots: Auxiliary variables kept per trainable variable.
    """

    name: str
    slots: int

    def __post_init__(self) -> None:
        if self.slots < 0:
            raise ValueError("slots must be non-negative")

    @property
    def state_multiplier(self) -> int:
        """At-rest footprint relative to the bare trainable variables."""
        return 1 + self.slots

    def at_rest_bytes(self, trainable_bytes: float) -> float:
        """Variable + slot bytes stored by this optimizer."""
        if trainable_bytes < 0:
            raise ValueError("trainable_bytes must be non-negative")
        return trainable_bytes * self.state_multiplier


SGD = Optimizer("sgd", slots=0)
MOMENTUM = Optimizer("momentum", slots=1)
ADAM = Optimizer("adam", slots=2)
ADAGRAD = Optimizer("adagrad", slots=1)
