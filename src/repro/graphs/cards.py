"""Model cards: human-readable summaries of built model graphs.

A "model card" here is the profiling-oriented view of a model: its
layer-group composition, where the FLOPs / memory traffic / parameters
live, and the Table IV/V-shaped totals.  Used by examples and handy in
a REPL when exploring a builder's output.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.units import GB, GIGA
from .graph import ModelGraph
from .ops import OpKind

__all__ = ["LayerGroupStats", "group_stats", "render_model_card"]


@dataclass(frozen=True)
class LayerGroupStats:
    """Aggregate resource usage of one layer group (name prefix)."""

    group: str
    op_count: int
    flops: float
    memory_access_bytes: float
    param_bytes: float

    def __post_init__(self) -> None:
        if self.op_count < 1:
            raise ValueError("op_count must be at least 1")


def _group_of(op_name: str, depth: int) -> str:
    return "/".join(op_name.split("/")[:depth])


def group_stats(graph: ModelGraph, depth: int = 1) -> List[LayerGroupStats]:
    """Aggregate forward ops by their name prefix at ``depth`` levels."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    accumulator: Dict[str, List[float]] = defaultdict(lambda: [0, 0.0, 0.0, 0.0])
    order: List[str] = []
    for op in graph.forward:
        group = _group_of(op.name, depth)
        if group not in accumulator:
            order.append(group)
        bucket = accumulator[group]
        bucket[0] += 1
        bucket[1] += op.flops
        bucket[2] += op.memory_access_bytes
        bucket[3] += op.param_bytes
    return [
        LayerGroupStats(
            group=group,
            op_count=int(accumulator[group][0]),
            flops=accumulator[group][1],
            memory_access_bytes=accumulator[group][2],
            param_bytes=accumulator[group][3],
        )
        for group in order
    ]


def _top_groups(
    stats: List[LayerGroupStats], key, limit: int
) -> List[Tuple[str, float]]:
    ranked = sorted(stats, key=key, reverse=True)[:limit]
    return [(s.group, key(s)) for s in ranked if key(s) > 0]


def render_model_card(graph: ModelGraph, depth: int = 1, top: int = 6) -> str:
    """A text model card: totals plus where the cost concentrates."""
    stats = group_stats(graph, depth)
    compute_ops = sum(
        1 for op in graph.forward if op.kind is OpKind.COMPUTE_BOUND
    )
    lines = [
        f"=== {graph.name} ({graph.domain}) ===",
        f"batch {graph.batch_size}, {len(graph.forward)} forward ops "
        f"({compute_ops} compute-bound), optimizer: {graph.optimizer.name}",
        f"weights at rest: {graph.dense_weight_bytes / 1e6:.1f} MB dense + "
        f"{graph.embedding_weight_bytes / GB:.2f} GB embedding",
        f"per training step: {graph.flop_count / GIGA:.1f} GFLOPs, "
        f"{graph.memory_access_bytes / GB:.2f} GB memory access, "
        f"{graph.input_bytes / 1e6:.2f} MB input",
        "",
        "top layer groups by forward FLOPs:",
    ]
    for group, flops in _top_groups(stats, lambda s: s.flops, top):
        lines.append(f"  {group:24s} {flops / GIGA:10.2f} GFLOPs")
    lines.append("top layer groups by parameters:")
    for group, params in _top_groups(stats, lambda s: s.param_bytes, top):
        lines.append(f"  {group:24s} {params / 1e6:10.2f} MB")
    return "\n".join(lines)
