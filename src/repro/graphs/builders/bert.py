"""BERT-Base masked-LM pre-training (Table IV "BERT", QA domain).

The PAI workload is BERT-Base (12 layers, hidden 768, FFN 3072, 12
heads) trained with Adam at batch 12 x sequence 256: Adam's two slot
variables triple the at-rest footprint, which is what takes 85M dense
parameters to the reported ~1GB.  The MLM logits are tied to the token
embedding, so the output projection carries no parameters of its own.

The Table V memory-access column reflects TensorFlow's unfused graph:
every attention/FFN element-wise op materializes broadcast and
transpose temporaries.  :data:`_MEMORY_AMPLIFICATION` calibrates that
inflation (recoverable by the XLA pass, Sec. IV-D).
"""

from __future__ import annotations

from typing import List

from ..graph import ModelGraph
from ..ops import (
    FP32_BYTES,
    Op,
    activation_op,
    elementwise_op,
    embedding_lookup_op,
    layernorm_op,
    matmul_op,
    softmax_op,
)
from ..optimizers import ADAM
from .common import amplify_memory

__all__ = ["build_bert"]

_BATCH = 12
_SEQ = 256
_HIDDEN = 768
_FFN = 3072
_LAYERS = 12
_HEADS = 12
_VOCAB = 30522
_POSITIONS = 512
_SEGMENTS = 2

#: Unfused-materialization factor calibrating Table V's 107.3 GB of
#: per-step memory access (the algorithmic traffic is ~9x smaller).
_MEMORY_AMPLIFICATION = 9.0


def _attention(ops: List[Op], prefix: str, batch: int, seq: int, hidden: int) -> None:
    ops.append(
        matmul_op(
            f"{prefix}/qkv",
            m=seq,
            k=hidden,
            n=3 * hidden,
            batch=batch,
            param_bytes=float(3 * hidden * hidden * FP32_BYTES),
        )
    )
    ops.append(
        matmul_op(f"{prefix}/scores", m=seq, k=hidden, n=seq, batch=batch, param_bytes=0.0)
    )
    ops.append(softmax_op(f"{prefix}/softmax", float(batch) * _HEADS * seq * seq))
    ops.append(
        matmul_op(f"{prefix}/context", m=seq, k=seq, n=hidden, batch=batch, param_bytes=0.0)
    )
    ops.append(
        matmul_op(
            f"{prefix}/out_proj",
            m=seq,
            k=hidden,
            n=hidden,
            batch=batch,
            param_bytes=float(hidden * hidden * FP32_BYTES),
        )
    )


def _ffn(ops: List[Op], prefix: str, batch: int, seq: int, hidden: int, ffn: int) -> None:
    tokens = float(batch) * seq
    ops.append(
        matmul_op(
            f"{prefix}/ffn/in",
            m=seq,
            k=hidden,
            n=ffn,
            batch=batch,
            param_bytes=float((hidden * ffn + ffn) * FP32_BYTES),
        )
    )
    ops.append(activation_op(f"{prefix}/ffn/gelu", tokens * ffn))
    ops.append(
        matmul_op(
            f"{prefix}/ffn/out",
            m=seq,
            k=ffn,
            n=hidden,
            batch=batch,
            param_bytes=float((ffn * hidden + hidden) * FP32_BYTES),
        )
    )


def build_bert() -> ModelGraph:
    """The Table IV/V BERT case study (batch 12, seq 256)."""
    tokens = float(_BATCH) * _SEQ
    ops: List[Op] = [
        embedding_lookup_op("embeddings/tokens", _VOCAB, _HIDDEN, tokens),
        embedding_lookup_op("embeddings/positions", _POSITIONS, _HIDDEN, tokens),
        embedding_lookup_op("embeddings/segments", _SEGMENTS, _HIDDEN, tokens),
        layernorm_op("embeddings/layernorm", tokens * _HIDDEN, _HIDDEN),
    ]
    for layer in range(_LAYERS):
        prefix = f"encoder/layer{layer}"
        _attention(ops, f"{prefix}/self_attn", _BATCH, _SEQ, _HIDDEN)
        ops.append(
            elementwise_op(f"{prefix}/attn_add", tokens * _HIDDEN, reads=2)
        )
        ops.append(
            layernorm_op(f"{prefix}/attn_layernorm", tokens * _HIDDEN, _HIDDEN)
        )
        _ffn(ops, prefix, _BATCH, _SEQ, _HIDDEN, _FFN)
        ops.append(
            elementwise_op(f"{prefix}/ffn_add", tokens * _HIDDEN, reads=2)
        )
        ops.append(
            layernorm_op(f"{prefix}/ffn_layernorm", tokens * _HIDDEN, _HIDDEN)
        )
    # Tied output projection: reuses the token table, no extra weights.
    ops.append(
        matmul_op("mlm/logits", m=_SEQ, k=_HIDDEN, n=_VOCAB, batch=_BATCH, param_bytes=0.0)
    )
    ops.append(softmax_op("mlm/softmax", tokens * _VOCAB))

    return ModelGraph(
        name="BERT",
        domain="QA",
        forward=tuple(amplify_memory(ops, _MEMORY_AMPLIFICATION)),
        batch_size=_BATCH,
        # Token ids, attention mask, segment ids and MLM labels: four
        # int32 streams per sequence position.
        input_bytes_per_sample=float(_SEQ * 4 * 4),
        embedding_access_bytes=3 * 2.0 * tokens * _HIDDEN * FP32_BYTES,
        optimizer=ADAM,
    )
