"""The six Table IV case-study model builders.

Each builder constructs the op-level :class:`~repro.graphs.graph.ModelGraph`
of one production workload the paper characterizes in depth (Sec. IV):
ResNet50, Transformer NMT, BERT-Base, a DeepSpeech-style LSTM stack,
the Multi-Interests recommender, and a GraphSAGE-style GCN.  The graphs
are calibrated so their aggregate weights/FLOPs/memory/traffic match
Tables IV and V; :func:`all_case_studies` returns them keyed by their
Table IV row names.
"""

from __future__ import annotations

from .bert import build_bert
from .gcn import build_gcn
from .multi_interests import build_multi_interests
from .nmt import build_nmt
from .resnet import RESNET_CONFIGS, build_resnet, build_resnet50
from .speech import build_speech

__all__ = [
    "RESNET_CONFIGS",
    "all_case_studies",
    "build_bert",
    "build_gcn",
    "build_multi_interests",
    "build_nmt",
    "build_resnet",
    "build_resnet50",
    "build_speech",
]


def all_case_studies() -> dict:
    """All six case-study graphs, keyed by their Table IV names."""
    return {
        "ResNet50": build_resnet50(),
        "NMT": build_nmt(),
        "BERT": build_bert(),
        "Speech": build_speech(),
        "Multi-Interests": build_multi_interests(),
        "GCN": build_gcn(),
    }
