"""Shared calibration helpers for the case-study builders.

The op constructors in :mod:`repro.graphs.ops` count the *algorithmic*
memory traffic of each layer: one read of every input tensor, one write
of the output.  Real TensorFlow graphs materialize far more than that —
broadcasts, transposes, gradient temporaries, unfused optimizer slices —
which is exactly the inflation the paper's XLA experiments recover
(Sec. IV-D).  Builders express that gap with :func:`amplify_memory`:
the amplified traffic reproduces the Table V "GPU Memory Access"
column, and the recorded ``unfused_factor`` lets the XLA fusion pass
de-materialize it again.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List

from ..ops import Op, OpKind

__all__ = ["amplify_memory"]


def amplify_memory(ops: Iterable[Op], factor: float) -> List[Op]:
    """Inflate memory-bound ops by an unfused-materialization factor.

    Every memory-bound op in ``ops`` gets its ``memory_access_bytes``
    multiplied by ``factor`` and its ``unfused_factor`` raised by the
    same amount (so an XLA-style fusion pass can recover the inflation);
    compute-bound ops pass through untouched.
    """
    if factor < 1.0:
        raise ValueError("amplification factor must be at least 1")
    amplified: List[Op] = []
    for op in ops:
        if op.kind is OpKind.MEMORY_BOUND:
            op = replace(
                op,
                memory_access_bytes=op.memory_access_bytes * factor,
                unfused_factor=op.unfused_factor * factor,
            )
        amplified.append(op)
    return amplified
