"""Multi-Interests recommender (Table IV "Multi-Interests").

The paper's extreme-embedding case study: a 467.5M-row x 64 item table
(239 GB at rest with momentum) behind a tiny dense network -- ~150K
dense parameters of self-attention over the 115-item behavior sequence
plus an interest-matching tower.  That asymmetry is why it trains
PS/Worker on 32 cNodes: only the accessed rows ever move.

Each sequence position also carries a 277-dim dense side-feature
vector, which is what the 261 MB per-step PCIe copy corresponds to.
Feature processing dominates the Table V memory column: decoding,
normalizing and regularizing the ragged [embedding || side-feature]
sequence materializes masks, broadcasts and tiling temporaries, so
those fixed pipeline ops carry a much larger unfused-materialization
factor than the attention blocks (Fig. 13(c)'s observation that the
element-wise share stays dominant as the batch grows, while extra
attention layers move time toward compute).  The embedding gather
itself is left at its algorithmic volume -- two passes over the
accessed rows.
"""

from __future__ import annotations

from typing import List

from ..graph import ModelGraph
from ..ops import (
    FP32_BYTES,
    Op,
    activation_op,
    elementwise_op,
    embedding_lookup_op,
    layernorm_op,
    matmul_op,
    softmax_op,
)
from .common import amplify_memory

__all__ = ["build_multi_interests"]

_SEQ = 115
_DIM = 64
_HEADS = 4
_FFN = 48
_VOCAB = 467_500_000
_TOWER_IN = 2 * _DIM  # user interest vector || candidate item vector
_TOWER_HIDDEN = 384
_SIDE_FEATURES = 277

#: Unfused-materialization factor for the ragged feature-processing
#: pipeline (the dominant inflation; see the module docstring).
_FEATURE_AMPLIFICATION = 11.75

#: Unfused-materialization factor for the attention/tower element-wise
#: ops (the embedding gather is excluded; see the module docstring).
_ATTN_AMPLIFICATION = 2.75


def build_multi_interests(
    batch_size: int = 2048, attention_layers: int = 2
) -> ModelGraph:
    """The Table IV/V Multi-Interests case study.

    Args:
        batch_size: Training examples per step (Table V uses 2048).
        attention_layers: Self-attention blocks over the behavior
            sequence (the production model uses 2).
    """
    if attention_layers < 1:
        raise ValueError("attention_layers must be at least 1")
    lookups = float(batch_size) * _SEQ
    table = embedding_lookup_op("embedding/table", _VOCAB, _DIM, lookups)

    # The ragged feature pipeline over [embedding || side features].
    width = _DIM + _SIDE_FEATURES
    positions = float(batch_size) * _SEQ
    features: List[Op] = [
        elementwise_op("features/decode", positions * width, reads=2),
        elementwise_op("features/normalize", positions * width, reads=2),
        elementwise_op("features/dropout", positions * width),
    ]

    dense: List[Op] = []
    for layer in range(attention_layers):
        prefix = f"attn/layer{layer}"
        dense.append(
            matmul_op(
                f"{prefix}/qkv", m=_SEQ, k=_DIM, n=3 * _DIM, batch=batch_size,
                param_bytes=float(3 * _DIM * _DIM * FP32_BYTES),
            )
        )
        dense.append(
            matmul_op(
                f"{prefix}/scores", m=_SEQ, k=_DIM, n=_SEQ, batch=batch_size,
                param_bytes=0.0,
            )
        )
        dense.append(
            softmax_op(
                f"{prefix}/softmax", float(batch_size) * _HEADS * _SEQ * _SEQ
            )
        )
        dense.append(
            matmul_op(
                f"{prefix}/context", m=_SEQ, k=_SEQ, n=_DIM, batch=batch_size,
                param_bytes=0.0,
            )
        )
        dense.append(
            matmul_op(
                f"{prefix}/out_proj", m=_SEQ, k=_DIM, n=_DIM, batch=batch_size,
                param_bytes=float(_DIM * _DIM * FP32_BYTES),
            )
        )
        dense.append(
            elementwise_op(
                f"{prefix}/attn_add", float(batch_size) * _SEQ * _DIM, reads=2
            )
        )
        dense.append(
            layernorm_op(
                f"{prefix}/attn_layernorm", float(batch_size) * _SEQ * _DIM, _DIM
            )
        )
        dense.append(
            matmul_op(
                f"{prefix}/ffn/in", m=_SEQ, k=_DIM, n=_FFN, batch=batch_size,
                param_bytes=float((_DIM * _FFN + _FFN) * FP32_BYTES),
            )
        )
        dense.append(
            activation_op(f"{prefix}/ffn/relu", float(batch_size) * _SEQ * _FFN)
        )
        dense.append(
            matmul_op(
                f"{prefix}/ffn/out", m=_SEQ, k=_FFN, n=_DIM, batch=batch_size,
                param_bytes=float((_FFN * _DIM + _DIM) * FP32_BYTES),
            )
        )
    # Pool the attended sequence into the user's interest vector.
    dense.append(
        elementwise_op(
            "interests/pool", float(batch_size) * _SEQ * _DIM, reads=1, writes=0,
        )
    )
    # Matching tower over [interests || candidate].
    dense.append(
        matmul_op(
            "tower/fc1", m=1, k=_TOWER_IN, n=_TOWER_HIDDEN, batch=batch_size,
            param_bytes=float(
                (_TOWER_IN * _TOWER_HIDDEN + _TOWER_HIDDEN) * FP32_BYTES
            ),
        )
    )
    dense.append(activation_op("tower/relu1", float(batch_size) * _TOWER_HIDDEN))
    dense.append(
        matmul_op(
            "tower/fc2", m=1, k=_TOWER_HIDDEN, n=_TOWER_IN, batch=batch_size,
            param_bytes=float(
                (_TOWER_HIDDEN * _TOWER_IN + _TOWER_IN) * FP32_BYTES
            ),
        )
    )
    dense.append(activation_op("tower/relu2", float(batch_size) * _TOWER_IN))
    dense.append(
        matmul_op(
            "tower/score", m=1, k=_TOWER_IN, n=1, batch=batch_size,
            param_bytes=float((_TOWER_IN + 1) * FP32_BYTES),
        )
    )

    forward = (
        (table,)
        + tuple(amplify_memory(features, _FEATURE_AMPLIFICATION))
        + tuple(amplify_memory(dense, _ATTN_AMPLIFICATION))
    )
    return ModelGraph(
        name="Multi-Interests",
        domain="Recommender",
        forward=forward,
        batch_size=batch_size,
        # Item ids plus the per-position dense side features.
        input_bytes_per_sample=float(_SEQ * _SIDE_FEATURES * FP32_BYTES),
        embedding_access_bytes=2.0 * lookups * _DIM * FP32_BYTES,
    )
