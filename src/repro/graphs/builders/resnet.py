"""The ResNet family: the convolutional case study (Table IV "ResNet50").

Standard ImageNet ResNets (He et al.) in the v1.5 layout torchvision
ships: the stride-2 downsampling sits on each stage's 3x3 convolution,
which is what the Table V FLOP count (1.56 TFLOPs per 64-image step)
corresponds to.  Parameter counts match the published torchvision
totals to <0.5% (the conv bias terms our ``conv2d_op`` carries are the
only difference).

Element-wise modeling: cuDNN executes BN+ReLU fused, so each
convolution is followed by one ``/bn`` op whose three passes cover the
activation; the residual ``/add`` likewise folds the post-add ReLU.
"""

from __future__ import annotations

from typing import List

from ..graph import ModelGraph
from ..ops import (
    FP32_BYTES,
    Op,
    batchnorm_op,
    conv2d_op,
    elementwise_op,
    matmul_op,
    pooling_op,
    softmax_op,
)

__all__ = ["RESNET_CONFIGS", "build_resnet", "build_resnet50"]

#: depth -> (blocks per stage, uses bottleneck blocks).
RESNET_CONFIGS = {
    18: ((2, 2, 2, 2), False),
    34: ((3, 4, 6, 3), False),
    50: ((3, 4, 6, 3), True),
    101: ((3, 4, 23, 3), True),
    152: ((3, 8, 36, 3), True),
}

#: Per-stage base channel widths (bottlenecks expand these 4x).
_STAGE_CHANNELS = (64, 128, 256, 512)

_IMAGE_SIZE = 224
_BATCH_SIZE = 64
_NUM_CLASSES = 1000


def _conv_bn(
    ops: List[Op],
    prefix: str,
    batch: int,
    size: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int = 1,
) -> int:
    """Append a conv + fused-BN pair; returns the output spatial size."""
    ops.append(
        conv2d_op(
            f"{prefix}/conv",
            batch=batch,
            height=size,
            width=size,
            in_channels=in_channels,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
        )
    )
    out_size = (size + stride - 1) // stride
    ops.append(
        batchnorm_op(
            f"{prefix}/bn",
            elements=float(batch) * out_size * out_size * out_channels,
            channels=out_channels,
        )
    )
    return out_size


def _residual_add(prefix: str, batch: int, size: int, channels: int) -> Op:
    """The block's residual add with the post-add ReLU folded in."""
    return elementwise_op(
        f"{prefix}/add",
        elements=float(batch) * size * size * channels,
        reads=2,
        flops_per_element=2.0,
    )


def build_resnet(depth: int, batch_size: int = _BATCH_SIZE) -> ModelGraph:
    """Build a ResNet of one of the published depths (18..152)."""
    if depth not in RESNET_CONFIGS:
        raise ValueError(
            f"unsupported ResNet depth {depth}; "
            f"choose from {sorted(RESNET_CONFIGS)}"
        )
    blocks_per_stage, bottleneck = RESNET_CONFIGS[depth]
    expansion = 4 if bottleneck else 1
    ops: List[Op] = []

    size = _conv_bn(ops, "stem", batch_size, _IMAGE_SIZE, 3, 64, kernel=7, stride=2)
    ops.append(
        pooling_op(
            "stem/maxpool",
            input_elements=float(batch_size) * size * size * 64,
            output_elements=float(batch_size) * (size // 2) * (size // 2) * 64,
        )
    )
    size //= 2
    in_channels = 64

    for stage_index, num_blocks in enumerate(blocks_per_stage, start=1):
        channels = _STAGE_CHANNELS[stage_index - 1]
        out_channels = channels * expansion
        for block_index in range(1, num_blocks + 1):
            prefix = f"stage{stage_index}/block{block_index}"
            stride = 2 if stage_index > 1 and block_index == 1 else 1
            if bottleneck:
                _conv_bn(ops, f"{prefix}/a", batch_size, size, in_channels, channels, 1)
                mid = _conv_bn(
                    ops, f"{prefix}/b", batch_size, size, channels, channels, 3, stride
                )
                _conv_bn(ops, f"{prefix}/c", batch_size, mid, channels, out_channels, 1)
            else:
                mid = _conv_bn(
                    ops, f"{prefix}/a", batch_size, size, in_channels, channels, 3, stride
                )
                _conv_bn(ops, f"{prefix}/b", batch_size, mid, channels, channels, 3)
            if stride != 1 or in_channels != out_channels:
                _conv_bn(
                    ops, f"{prefix}/proj", batch_size, size, in_channels,
                    out_channels, 1, stride,
                )
            size = mid
            in_channels = out_channels
            ops.append(_residual_add(prefix, batch_size, size, out_channels))

    ops.append(
        pooling_op(
            "head/avgpool",
            input_elements=float(batch_size) * size * size * in_channels,
            output_elements=float(batch_size) * in_channels,
        )
    )
    ops.append(
        matmul_op(
            "head/classifier",
            m=1,
            k=in_channels,
            n=_NUM_CLASSES,
            batch=batch_size,
            param_bytes=float(
                (in_channels * _NUM_CLASSES + _NUM_CLASSES) * FP32_BYTES
            ),
        )
    )
    ops.append(softmax_op("head/softmax", float(batch_size) * _NUM_CLASSES))

    return ModelGraph(
        name=f"ResNet{depth}",
        domain="CV",
        forward=tuple(ops),
        batch_size=batch_size,
        input_bytes_per_sample=float(
            _IMAGE_SIZE * _IMAGE_SIZE * 3 * FP32_BYTES
        ),
    )


def build_resnet50() -> ModelGraph:
    """The Table IV/V ResNet50 case study (batch 64)."""
    return build_resnet(50)
