"""GraphSAGE-style GCN recommender (Table IV "GCN").

Item-to-item matching over a 52.7M-node graph with 128-dim node
embeddings (54 GB at rest with momentum).  Each of the 512 seed items
per step samples a three-hop neighborhood with fanout 10 x 20 x 25
(10 + 200 + 5000 = 5210 nodes); every hop transforms its nodes with a
shared 128x128 projection and mean-aggregates them one level up.  The
pooled representation feeds a deep matching tower (8192/2304/1024 plus
a similarity head).

The gathered neighborhoods dominate memory traffic.  TensorFlow's
ragged gather materializes the sampled rows several times (gather,
degree-normalize, concat); :data:`_MEMORY_AMPLIFICATION` calibrates
that against Table V.  The *algorithmic* round trip (what PEARL ships
across NVLink) stays at two passes over the accessed rows and is
recorded in ``embedding_access_bytes``.
"""

from __future__ import annotations

from typing import List

from ..graph import ModelGraph
from ..ops import (
    FP32_BYTES,
    Op,
    activation_op,
    embedding_lookup_op,
    matmul_op,
    pooling_op,
)
from .common import amplify_memory

__all__ = ["build_gcn"]

_BATCH = 512
_NODES = 52_700_000
_DIM = 128
#: Sampled nodes per hop for one seed item, leaves first.
_FANOUT = (5000, 200, 10)
_TOWER = (8192, 2304, 1024)

#: Ragged-gather materialization factor on the embedding lookup,
#: calibrating the Table V memory-access column.
_MEMORY_AMPLIFICATION = 3.0


def build_gcn() -> ModelGraph:
    """The Table IV/V GCN case study (batch 512, PEARL on 8 GPUs)."""
    sampled = sum(_FANOUT)
    lookups = float(_BATCH) * sampled
    table = amplify_memory(
        [embedding_lookup_op("embedding/nodes", _NODES, _DIM, lookups)],
        _MEMORY_AMPLIFICATION,
    )[0]
    ops: List[Op] = [table]

    for hop, nodes in enumerate(_FANOUT):
        pooled = _FANOUT[hop + 1] if hop + 1 < len(_FANOUT) else 1
        ops.append(
            matmul_op(
                f"gcn/hop{hop}/transform",
                m=nodes,
                k=_DIM,
                n=_DIM,
                batch=_BATCH,
                param_bytes=float(_DIM * _DIM * FP32_BYTES),
            )
        )
        ops.append(
            pooling_op(
                f"gcn/hop{hop}/aggregate",
                input_elements=float(_BATCH) * nodes * _DIM,
                output_elements=float(_BATCH) * pooled * _DIM,
            )
        )
        ops.append(
            activation_op(f"gcn/hop{hop}/relu", float(_BATCH) * pooled * _DIM)
        )

    # Matching tower over [source || target || product || difference].
    width = 4 * _DIM
    for index, hidden in enumerate(_TOWER, start=1):
        ops.append(
            matmul_op(
                f"tower/fc{index}",
                m=1,
                k=width,
                n=hidden,
                batch=_BATCH,
                param_bytes=float((width * hidden + hidden) * FP32_BYTES),
            )
        )
        ops.append(activation_op(f"tower/relu{index}", float(_BATCH) * hidden))
        width = hidden
    ops.append(
        matmul_op(
            "tower/similarity",
            m=1,
            k=width,
            n=1,
            batch=_BATCH,
            param_bytes=float((width + 1) * FP32_BYTES),
        )
    )
    ops.append(activation_op("tower/sigmoid", float(_BATCH)))

    return ModelGraph(
        name="GCN",
        domain="Recommender",
        forward=tuple(ops),
        batch_size=_BATCH,
        # Seed-pair ids plus a 584-dim fp32 context-feature vector.
        input_bytes_per_sample=2344.0,
        embedding_access_bytes=2.0 * lookups * _DIM * FP32_BYTES,
    )
