"""Speech recognition: a DeepSpeech-style LSTM stack (Table IV "Speech").

Batch 32 of ~28-second utterances: 2800 spectrogram frames of 2048
FFT bins each -- the fp32 spectra are what make this the PCIe-heaviest
case study (804 MB per step) while its element-wise LSTM cells attain
only 3.1% of memory bandwidth unfused (Table VI).

Two strided "convolutional" frontend layers (modeled as the matmuls
their im2col lowering performs) downsample 4x in time, then five
layer-normalized LSTM layers of hidden size 1024 feed a 12K-way CTC
softmax.  No memory amplification: the unrolled cell updates already
stream every gate tensor, which is exactly the traffic Table V reports.
"""

from __future__ import annotations

from typing import List

from ..graph import ModelGraph
from ..ops import (
    FP32_BYTES,
    Op,
    layernorm_op,
    lstm_layer_ops,
    matmul_op,
    softmax_op,
)

__all__ = ["build_speech"]

_BATCH = 32
_FRAMES = 2800
_BINS = 2048
_HIDDEN = 1024
_LSTM_LAYERS = 5
_VOCAB = 12000


def build_speech() -> ModelGraph:
    """The Table IV/V Speech case study (batch 32, 1w1g)."""
    ops: List[Op] = []
    # Frontend conv 1: stack 2 frames (4096 bins), stride 2 -> 1400
    # steps of width 512; conv 2: stack 2 (1024), stride 2 -> 700 x 640.
    ops.append(
        matmul_op(
            "frontend/conv0",
            m=_FRAMES // 2,
            k=2 * _BINS,
            n=512,
            batch=_BATCH,
            param_bytes=float((2 * _BINS * 512 + 512) * FP32_BYTES),
        )
    )
    ops.append(
        matmul_op(
            "frontend/conv1",
            m=_FRAMES // 4,
            k=2 * 512,
            n=640,
            batch=_BATCH,
            param_bytes=float((2 * 512 * 640 + 640) * FP32_BYTES),
        )
    )
    seq = _FRAMES // 4
    input_size = 640
    for layer in range(_LSTM_LAYERS):
        ops.extend(
            lstm_layer_ops(
                f"lstm/layer{layer}",
                batch=_BATCH,
                seq_len=seq,
                input_size=input_size,
                hidden_size=_HIDDEN,
            )
        )
        ops.append(
            layernorm_op(
                f"lstm/layer{layer}/layernorm",
                float(_BATCH) * seq * _HIDDEN,
                _HIDDEN,
            )
        )
        input_size = _HIDDEN
    ops.append(
        matmul_op(
            "head/logits/matmul",
            m=seq,
            k=_HIDDEN,
            n=_VOCAB,
            batch=_BATCH,
            param_bytes=float((_HIDDEN * _VOCAB + _VOCAB) * FP32_BYTES),
        )
    )
    ops.append(softmax_op("head/softmax", float(_BATCH) * seq * _VOCAB))

    return ModelGraph(
        name="Speech",
        domain="Speech recognition",
        forward=tuple(ops),
        batch_size=_BATCH,
        input_bytes_per_sample=float(_FRAMES * _BINS * FP32_BYTES),
    )
