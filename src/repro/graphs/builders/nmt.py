"""Transformer NMT (Table IV "NMT", Translation domain).

A 6+6 encoder/decoder Transformer over a 64K shared-prefix vocabulary.
Table V reports the batch as 6144 -- PAI batches translation by *token
count*, so the graph models 48 source + 48 target sentences of length
64 (3072 tokens per side).  Source and target use separate 65536x768
embedding tables; positions are sinusoidal (parameter-free) and the
output logits are tied to the target table.

As with BERT, :data:`_MEMORY_AMPLIFICATION` calibrates the unfused
element-wise materialization against Table V's memory-access column.
"""

from __future__ import annotations

from typing import List

from ..graph import ModelGraph
from ..ops import (
    FP32_BYTES,
    Op,
    activation_op,
    elementwise_op,
    embedding_lookup_op,
    layernorm_op,
    matmul_op,
    softmax_op,
)
from .common import amplify_memory

__all__ = ["build_nmt"]

_TOKENS_PER_SIDE = 3072
_SEQ = 64
_SENTENCES = _TOKENS_PER_SIDE // _SEQ
_HIDDEN = 768
_FFN = 2560
_LAYERS = 6
_HEADS = 12
_VOCAB = 65536

#: Unfused-materialization factor (see the BERT builder).
_MEMORY_AMPLIFICATION = 7.4


def _self_attention(ops: List[Op], prefix: str) -> None:
    ops.append(
        matmul_op(
            f"{prefix}/qkv",
            m=_SEQ,
            k=_HIDDEN,
            n=3 * _HIDDEN,
            batch=_SENTENCES,
            param_bytes=float(3 * _HIDDEN * _HIDDEN * FP32_BYTES),
        )
    )
    _attention_core(ops, prefix)


def _cross_attention(ops: List[Op], prefix: str) -> None:
    ops.append(
        matmul_op(
            f"{prefix}/q",
            m=_SEQ,
            k=_HIDDEN,
            n=_HIDDEN,
            batch=_SENTENCES,
            param_bytes=float(_HIDDEN * _HIDDEN * FP32_BYTES),
        )
    )
    ops.append(
        matmul_op(
            f"{prefix}/kv",
            m=_SEQ,
            k=_HIDDEN,
            n=2 * _HIDDEN,
            batch=_SENTENCES,
            param_bytes=float(2 * _HIDDEN * _HIDDEN * FP32_BYTES),
        )
    )
    _attention_core(ops, prefix)


def _attention_core(ops: List[Op], prefix: str) -> None:
    ops.append(
        matmul_op(
            f"{prefix}/scores", m=_SEQ, k=_HIDDEN, n=_SEQ, batch=_SENTENCES,
            param_bytes=0.0,
        )
    )
    ops.append(
        softmax_op(f"{prefix}/softmax", float(_SENTENCES) * _HEADS * _SEQ * _SEQ)
    )
    ops.append(
        matmul_op(
            f"{prefix}/context", m=_SEQ, k=_SEQ, n=_HIDDEN, batch=_SENTENCES,
            param_bytes=0.0,
        )
    )
    ops.append(
        matmul_op(
            f"{prefix}/out_proj",
            m=_SEQ,
            k=_HIDDEN,
            n=_HIDDEN,
            batch=_SENTENCES,
            param_bytes=float(_HIDDEN * _HIDDEN * FP32_BYTES),
        )
    )


def _residual_layernorm(ops: List[Op], prefix: str) -> None:
    tokens = float(_TOKENS_PER_SIDE)
    ops.append(elementwise_op(f"{prefix}/add", tokens * _HIDDEN, reads=2))
    ops.append(layernorm_op(f"{prefix}/layernorm", tokens * _HIDDEN, _HIDDEN))


def _ffn(ops: List[Op], prefix: str) -> None:
    tokens = float(_TOKENS_PER_SIDE)
    ops.append(
        matmul_op(
            f"{prefix}/ffn/in",
            m=_SEQ,
            k=_HIDDEN,
            n=_FFN,
            batch=_SENTENCES,
            param_bytes=float((_HIDDEN * _FFN + _FFN) * FP32_BYTES),
        )
    )
    ops.append(activation_op(f"{prefix}/ffn/relu", tokens * _FFN))
    ops.append(
        matmul_op(
            f"{prefix}/ffn/out",
            m=_SEQ,
            k=_FFN,
            n=_HIDDEN,
            batch=_SENTENCES,
            param_bytes=float((_FFN * _HIDDEN + _HIDDEN) * FP32_BYTES),
        )
    )


def build_nmt() -> ModelGraph:
    """The Table IV/V NMT case study (6144 tokens per step)."""
    tokens = float(_TOKENS_PER_SIDE)
    ops: List[Op] = [
        embedding_lookup_op("embeddings/source", _VOCAB, _HIDDEN, tokens),
        embedding_lookup_op("embeddings/target", _VOCAB, _HIDDEN, tokens),
        # Sinusoidal position encoding: an add, no parameters.
        elementwise_op("embeddings/posenc", 2 * tokens * _HIDDEN, reads=2),
    ]
    for layer in range(_LAYERS):
        prefix = f"encoder/layer{layer}"
        _self_attention(ops, f"{prefix}/self_attn")
        _residual_layernorm(ops, f"{prefix}/self_attn_post")
        _ffn(ops, prefix)
        _residual_layernorm(ops, f"{prefix}/ffn_post")
    for layer in range(_LAYERS):
        prefix = f"decoder/layer{layer}"
        _self_attention(ops, f"{prefix}/self_attn")
        _residual_layernorm(ops, f"{prefix}/self_attn_post")
        _cross_attention(ops, f"{prefix}/cross_attn")
        _residual_layernorm(ops, f"{prefix}/cross_attn_post")
        _ffn(ops, prefix)
        _residual_layernorm(ops, f"{prefix}/ffn_post")
    # Logits tied to the target embedding table.
    ops.append(
        matmul_op(
            "head/logits", m=_SEQ, k=_HIDDEN, n=_VOCAB, batch=_SENTENCES,
            param_bytes=0.0,
        )
    )
    ops.append(softmax_op("head/softmax", tokens * _VOCAB))

    return ModelGraph(
        name="NMT",
        domain="Translation",
        forward=tuple(amplify_memory(ops, _MEMORY_AMPLIFICATION)),
        # Table V counts the step batch in tokens (source + target).
        batch_size=2 * _TOKENS_PER_SIDE,
        input_bytes_per_sample=4.0,  # one int32 token id per "sample"
        embedding_access_bytes=2.0 * 2 * tokens * _HIDDEN * FP32_BYTES,
        )
