"""Mixed-precision (TensorCore) training pass (Sec. IV-D, Fig. 13(a)).

Volta TensorCores provide "up to 8X higher peak FLOPS" than FP32
(Sec. III-B); the paper measures a net 2.8x speedup on MatMul kernels
and 1.44x end-to-end for the BERT-class workload.  The pass retargets
MatMul-like ops to TensorCore execution and halves their activation
traffic (FP16 operands); the net MatMul speedup emerges in the executor
from the TensorCore peak combined with its utilization
(:data:`TENSOR_CORE_UTILIZATION`): ``8 x 0.35 = 2.8``.
"""

from __future__ import annotations

from dataclasses import replace

from ..graphs.graph import ModelGraph
from ..graphs.ops import OpKind

__all__ = [
    "TENSOR_CORE_PEAK_RATIO",
    "TENSOR_CORE_UTILIZATION",
    "NET_MATMUL_SPEEDUP",
    "mixed_precision_pass",
]

#: TensorCore peak relative to FP32 peak (Volta whitepaper: "up to 8X").
TENSOR_CORE_PEAK_RATIO = 8.0

#: Fraction of the TensorCore peak a well-tuned kernel attains relative
#: to the FP32 kernel's own efficiency; calibrated so the net MatMul
#: speedup matches the measured 2.8x of Sec. IV-D.
TENSOR_CORE_UTILIZATION = 0.35

#: The net kernel-level speedup MP delivers on MatMul-like ops.
NET_MATMUL_SPEEDUP = TENSOR_CORE_PEAK_RATIO * TENSOR_CORE_UTILIZATION


def mixed_precision_pass(graph: ModelGraph) -> ModelGraph:
    """Retarget MatMul-like ops to TensorCore, FP16 operands.

    The op's FLOP count is a workload property and stays unchanged; the
    ``tensor_core`` flag tells the executor to use the TensorCore rate,
    and activation traffic halves because operands shrink to FP16.
    """
    forward = []
    for op in graph.forward:
        if op.matmul_like and op.kind is OpKind.COMPUTE_BOUND:
            forward.append(
                replace(
                    op,
                    tensor_core=True,
                    memory_access_bytes=op.memory_access_bytes / 2.0,
                )
            )
        else:
            forward.append(op)
    return graph.with_forward(forward)
