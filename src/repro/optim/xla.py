"""XLA-style operation fusion and code generation (Sec. IV-D).

The pass models the two effects the paper attributes to XLA:

* **Fusion / de-materialization** -- consecutive fusible element-wise
  ops merge into one kernel: interior intermediates are never written
  to and re-read from device memory.  Structurally each fused boundary
  saves one write + one read; on top of that, an op whose builder
  marked it as inflated by unfused materialization
  (``Op.unfused_factor``) recovers that factor entirely.
* **Cache residency / locality** -- "operation fusion exploits GPU's
  high-speed cache" (Sec. IV-D): fused kernels attain a higher fraction
  of the memory bandwidth.  The executor applies
  :data:`CACHE_RESIDENCY_UPLIFT` to the memory efficiency of fused ops
  (never lowering it, capped at :data:`MAX_FUSED_EFFICIENCY`).  This is
  what rescues the Speech model, whose unfused kernels attain only 3 %
  of the GDDR bandwidth (Table VI).

Launch-overhead reduction falls out naturally: a fused group is one
kernel instead of many.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..graphs.graph import ModelGraph
from ..graphs.ops import Op, OpKind

__all__ = [
    "STRUCTURAL_FUSION_SAVING",
    "CACHE_RESIDENCY_UPLIFT",
    "MAX_FUSED_EFFICIENCY",
    "fused_memory_efficiency",
    "xla_fusion_pass",
    "fusion_groups",
]

#: Fraction of a fused group's (de-materialized) traffic that remains:
#: each interior boundary stops writing + re-reading one intermediate.
STRUCTURAL_FUSION_SAVING = 0.8

#: Memory-bandwidth efficiency multiplier for fused, cache-resident
#: kernels; calibrated against the 3.43x element-wise speedup XLA
#: achieves on the Speech model (Fig. 13(b)).
CACHE_RESIDENCY_UPLIFT = 2.75

#: Fused kernels cannot exceed this fraction of peak memory bandwidth.
MAX_FUSED_EFFICIENCY = 0.78


def fused_memory_efficiency(base_efficiency: float) -> float:
    """Memory efficiency of a fused kernel (never below the base)."""
    if not 0 < base_efficiency <= 1:
        raise ValueError("base_efficiency must be in (0, 1]")
    return max(
        base_efficiency,
        min(MAX_FUSED_EFFICIENCY, base_efficiency * CACHE_RESIDENCY_UPLIFT),
    )


def fusion_groups(ops: List[Op]) -> List[List[Op]]:
    """Partition an op list into maximal runs of fusible ops.

    Non-fusible ops form singleton groups; consecutive fusible
    (element-wise) ops form one group each.
    """
    groups: List[List[Op]] = []
    current: List[Op] = []
    for op in ops:
        if op.fusible:
            current.append(op)
        else:
            if current:
                groups.append(current)
                current = []
            groups.append([op])
    if current:
        groups.append(current)
    return groups


def _fuse_group(group: List[Op]) -> Op:
    """Merge a run of fusible element-wise ops into one kernel."""
    if len(group) == 1 and group[0].unfused_factor == 1.0:
        return replace(group[0], fused=True)
    demat = sum(op.memory_access_bytes / op.unfused_factor for op in group)
    saving = STRUCTURAL_FUSION_SAVING if len(group) > 1 else 1.0
    return Op(
        name=f"fused({group[0].name}..x{len(group)})",
        kind=OpKind.MEMORY_BOUND,
        flops=sum(op.flops for op in group),
        memory_access_bytes=demat * saving,
        param_bytes=sum(op.param_bytes for op in group),
        is_embedding=False,
        matmul_like=False,
        fusible=True,
        is_backward=all(op.is_backward for op in group),
        unfused_factor=1.0,
        fused=True,
        tensor_core=False,
    )


def xla_fusion_pass(graph: ModelGraph) -> ModelGraph:
    """Fuse element-wise chains in the forward graph.

    Backward ops are generated from the forward list, so fusing the
    forward pass fuses the whole training step.
    """
    forward: List[Op] = []
    for group in fusion_groups(list(graph.forward)):
        if group[0].fusible:
            forward.append(_fuse_group(group))
        else:
            forward.extend(group)
    return graph.with_forward(forward)
