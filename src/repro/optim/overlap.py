"""Computation/communication overlap scheduling (Sec. V-B).

The paper brackets reality between two extremes -- no overlap
(``T = T_d + T_c + T_w``) and ideal overlap (``T = max{...}``) -- and
cites Poseidon and TicTac as systems that schedule gradient transfers
behind the remaining backward computation.  This module implements that
middle ground analytically: a **wait-free backward scheduler** that
starts pushing each layer's gradient as soon as it is produced.

With gradients produced uniformly across the backward pass, the
achievable overlap window for weight traffic is the backward-compute
time itself; the exposed (non-overlapped) communication is::

    T_w_exposed = max(T_w - overlap_fraction * T_c_backward, T_w_tail)

where ``T_w_tail`` is the final layer's gradient, which can never hide
(it is produced last).  ``overlap_fraction`` models scheduler quality:
0 reproduces the paper's non-overlap composition, 1 with a zero tail
approaches the ideal bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.features import WorkloadFeatures
from ..core.hardware import HardwareConfig
from ..core.timemodel import (
    PAPER_MODEL_OPTIONS,
    ModelOptions,
    estimate_breakdown,
)

__all__ = ["OverlapSchedule", "overlapped_step_time", "overlap_speedup"]

#: Share of T_c that belongs to the backward pass (backward costs ~2x
#: forward, so 2/3 of the compute window can hide communication).
BACKWARD_COMPUTE_SHARE = 2.0 / 3.0


@dataclass(frozen=True)
class OverlapSchedule:
    """A communication-scheduling configuration.

    Attributes:
        overlap_fraction: How much of the backward-compute window the
            scheduler actually uses (0 = none, 1 = perfect wait-free).
        tail_fraction: Share of the weight traffic produced by the last
            layer, which cannot overlap with anything.
    """

    overlap_fraction: float = 0.9
    tail_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in [0, 1]")


def overlapped_step_time(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    schedule: OverlapSchedule = OverlapSchedule(),
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """Step time under a wait-free gradient-push schedule.

    Bounded below by the ideal-overlap composition and above by the
    non-overlap composition for every configuration.
    """
    breakdown = estimate_breakdown(features, hardware, efficiency, options)
    window = schedule.overlap_fraction * BACKWARD_COMPUTE_SHARE * (
        breakdown.computation
    )
    tail = schedule.tail_fraction * breakdown.weight_total
    exposed = max(breakdown.weight_total - window, tail)
    total = breakdown.data_io + breakdown.computation + exposed
    return max(total, breakdown.total_ideal_overlap)


def overlap_speedup(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    schedule: OverlapSchedule = OverlapSchedule(),
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """Speedup of the schedule over the paper's non-overlap composition."""
    breakdown = estimate_breakdown(features, hardware, efficiency, options)
    overlapped = overlapped_step_time(
        features, hardware, schedule, efficiency, options
    )
    return breakdown.total / overlapped
