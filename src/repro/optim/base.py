"""Graph-level optimization passes (Sec. IV-D).

A pass is a pure transformation :class:`ModelGraph` -> :class:`ModelGraph`;
passes compose by chaining (the order MP-then-XLA matches the paper's
"with both MP and XLA in place" configuration).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..graphs.graph import ModelGraph

__all__ = ["OptimizationPass", "apply_passes"]

#: A graph-to-graph transformation.
OptimizationPass = Callable[[ModelGraph], ModelGraph]


def apply_passes(graph: ModelGraph, passes: Iterable[OptimizationPass]) -> ModelGraph:
    """Apply passes left to right."""
    for optimization in passes:
        graph = optimization(graph)
    return graph
