"""Optimization techniques of Sec. IV-D: mixed precision and XLA fusion."""

from .base import OptimizationPass, apply_passes
from .overlap import OverlapSchedule, overlap_speedup, overlapped_step_time
from .mixed_precision import (
    NET_MATMUL_SPEEDUP,
    TENSOR_CORE_PEAK_RATIO,
    TENSOR_CORE_UTILIZATION,
    mixed_precision_pass,
)
from .xla import (
    CACHE_RESIDENCY_UPLIFT,
    MAX_FUSED_EFFICIENCY,
    STRUCTURAL_FUSION_SAVING,
    fused_memory_efficiency,
    fusion_groups,
    xla_fusion_pass,
)

__all__ = [
    "CACHE_RESIDENCY_UPLIFT",
    "MAX_FUSED_EFFICIENCY",
    "NET_MATMUL_SPEEDUP",
    "OptimizationPass",
    "OverlapSchedule",
    "STRUCTURAL_FUSION_SAVING",
    "TENSOR_CORE_PEAK_RATIO",
    "TENSOR_CORE_UTILIZATION",
    "apply_passes",
    "fused_memory_efficiency",
    "fusion_groups",
    "mixed_precision_pass",
    "overlap_speedup",
    "overlapped_step_time",
    "xla_fusion_pass",
]
