"""``repro.obs`` -- structured observability for the reproduction.

A 20k-job suite run used to be a black box; this package is the
measurement substrate under every layer:

* :class:`MetricRegistry` -- counters, gauges and timers, aggregated
  in-process and rendered as the end-of-run summary table;
* span-style tracing -- ``with get_obs().trace("experiment", id=...):``
  context managers that nest and record wall + CPU durations;
* pluggable sinks -- a human-readable stderr log (``-v`` / ``-q``
  levels), a machine-readable JSON-lines event log (``--log-json``)
  and an in-memory sink for tests.

Instrumented call sites reach the process-wide context through
:func:`get_obs`; the CLI upgrades it via :func:`configure`.  See
``docs/ARCHITECTURE.md`` for the event schema.
"""

from .core import Observability, configure, get_obs, reset_obs
from .metrics import (
    Counter,
    Gauge,
    MetricRegistry,
    Timer,
    render_summary_table,
)
from .sinks import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    JsonLinesSink,
    MemorySink,
    Sink,
    StderrSink,
)

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "Counter",
    "Gauge",
    "Timer",
    "MetricRegistry",
    "Observability",
    "Sink",
    "StderrSink",
    "JsonLinesSink",
    "MemorySink",
    "configure",
    "get_obs",
    "render_summary_table",
    "reset_obs",
]
