"""The observability context: events, spans and the process-wide instance.

Event schema (one flat JSON object per event):

========  =====================================================
field     meaning
========  =====================================================
``ts``    Unix timestamp (seconds, float) the event was emitted.
``kind``  Event type: ``span``, ``log``, ``summary``, or a
          dotted domain name (``cache.hit``, ``pool.broken``,
          ``sched.done``, ``trace.calibration``, ...).
``level`` ``debug`` / ``info`` / ``warning`` / ``error``.
========  =====================================================

``span`` events additionally carry ``name``, ``status`` (``ok`` /
``error``), ``wall_s``, ``cpu_s`` (when measured in-process), ``depth``
(nesting level) and the span's keyword attributes.  ``summary`` events
carry the full :meth:`~repro.obs.metrics.MetricRegistry.snapshot` under
``metrics``.

The module-level instance returned by :func:`get_obs` starts with a
single warnings-only stderr sink, so library use is silent; the CLI
upgrades it through :func:`configure` (``-v`` / ``-q`` /
``--log-json``).  Everything is fork-inheritance friendly: worker
processes keep emitting into the same JSON-lines file.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from .metrics import MetricRegistry, render_summary_table
from .sinks import (
    DEBUG,
    ERROR,
    INFO,
    LEVEL_NAMES,
    WARNING,
    JsonLinesSink,
    Sink,
    StderrSink,
)

__all__ = [
    "Observability",
    "configure",
    "get_obs",
    "reset_obs",
]


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.depth = 0


class Observability:
    """One metrics registry plus a fan-out of event sinks."""

    def __init__(self, sinks: Optional[List[Sink]] = None) -> None:
        self.metrics = MetricRegistry()
        self.sinks: List[Sink] = list(sinks) if sinks is not None else []
        self._spans = _SpanStack()

    # ---- sinks -----------------------------------------------------

    def add_sink(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def close(self) -> None:
        """Close every sink (flushes the JSON-lines event log)."""
        for sink in self.sinks:
            try:
                sink.close()
            # repro: ignore[exception-contract] last-resort swallow by
            # design: a dying sink must not mask the run's result, and
            # reporting through obs here would re-enter the dying sink
            except Exception:
                pass

    # ---- events ----------------------------------------------------

    def event(self, kind: str, *, level: int = INFO, **fields: Any) -> None:
        """Emit one structured event to every sink."""
        if not self.sinks:
            return
        payload: Dict[str, Any] = {
            "ts": time.time(),
            "kind": kind,
            "level": LEVEL_NAMES.get(level, "info"),
        }
        payload.update(fields)
        for sink in self.sinks:
            sink.emit(payload)

    def log(self, level: int, message: str, **fields: Any) -> None:
        self.event("log", level=level, message=message, **fields)

    def debug(self, message: str, **fields: Any) -> None:
        self.log(DEBUG, message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        self.log(INFO, message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        self.log(WARNING, message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        self.log(ERROR, message, **fields)

    # ---- spans -----------------------------------------------------

    def span_event(
        self,
        name: str,
        *,
        wall_s: float,
        cpu_s: Optional[float] = None,
        status: str = "ok",
        level: int = DEBUG,
        depth: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record one finished span: a timer observation plus an event.

        Used both by :meth:`trace` and directly by the suite executor,
        which measures experiment durations inside worker processes and
        reports them from the parent.
        """
        self.metrics.timer(f"span.{name}").observe(wall_s)
        fields: Dict[str, Any] = {
            "name": name,
            "status": status,
            "wall_s": wall_s,
            "depth": self._spans.depth if depth is None else depth,
        }
        if cpu_s is not None:
            fields["cpu_s"] = cpu_s
        fields.update(attrs)
        self.event("span", level=level, **fields)

    @contextmanager
    def trace(
        self, name: str, *, level: int = DEBUG, **attrs: Any
    ) -> Iterator[None]:
        """Span-style tracing: times a block (wall + CPU), nests."""
        depth = self._spans.depth
        self._spans.depth = depth + 1
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        status = "ok"
        try:
            yield
        except BaseException:
            status = "error"
            raise
        finally:
            self._spans.depth = depth
            self.span_event(
                name,
                wall_s=time.perf_counter() - wall_start,
                cpu_s=time.process_time() - cpu_start,
                status=status,
                level=level,
                depth=depth,
                **attrs,
            )

    # ---- summary ---------------------------------------------------

    def summary_table(self) -> str:
        """The human-readable end-of-run metric table."""
        return render_summary_table(self.metrics)

    def emit_summary(self) -> None:
        """Emit the ``summary`` event carrying the full metric snapshot.

        Debug level on stderr (the human-readable summary table covers
        that audience); the JSON-lines sink records every event
        regardless of level, so the snapshot always lands in the log.
        """
        self.event("summary", level=DEBUG, metrics=self.metrics.snapshot())


_LOCK = threading.Lock()
_OBS: Optional[Observability] = None


def get_obs() -> Observability:
    """The process-wide observability context (created on first use)."""
    global _OBS
    with _LOCK:
        if _OBS is None:
            _OBS = Observability(sinks=[StderrSink(min_level=WARNING)])
        return _OBS


def configure(
    *,
    verbose: bool = False,
    quiet: bool = False,
    json_path: Optional[Union[str, Path]] = None,
) -> Observability:
    """(Re)configure the process-wide context; the CLI's entry point.

    ``verbose`` lowers the stderr threshold to debug, ``quiet`` raises
    it to errors only, and ``json_path`` adds a JSON-lines event log.
    """
    if verbose and quiet:
        raise ValueError("pass at most one of verbose/quiet")
    obs = get_obs()
    obs.close()
    level = DEBUG if verbose else ERROR if quiet else INFO
    obs.sinks = [StderrSink(min_level=level)]
    if json_path is not None:
        obs.add_sink(JsonLinesSink(json_path))
    return obs


def reset_obs() -> None:
    """Close and drop the process-wide context (test hook)."""
    global _OBS
    with _LOCK:
        if _OBS is not None:
            _OBS.close()
        _OBS = None
