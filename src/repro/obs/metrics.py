"""The metric registry: counters, gauges and timers.

Metrics are in-process aggregates -- cheap enough for hot loops (a
counter increment is a dict lookup plus an integer add under a lock) --
that the sinks render once at the end of a run, in contrast to
:mod:`repro.obs.sinks` events which stream out as they happen.  Worker
processes forked by the suite runner inherit a *copy* of the registry;
cross-process aggregation is the parent's job (the executor counts
cache traffic and experiment outcomes on its side of the fork).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricRegistry",
    "render_summary_table",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value; remembers the extremes it visited."""

    __slots__ = ("name", "value", "max_value", "min_value", "_touched")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self._touched = False

    def set(self, value: float) -> None:
        self.value = value
        self.max_value = max(self.max_value, value)
        self.min_value = min(self.min_value, value)
        self._touched = True

    @property
    def touched(self) -> bool:
        return self._touched


class Timer:
    """A duration histogram-lite: count, total, min, max, mean."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class MetricRegistry:
    """Thread-safe, create-on-first-use store of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def timer(self, name: str) -> Timer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Timer(name)
            return metric

    @contextmanager
    def time(self, name: str) -> Iterator[Timer]:
        """Time a block into the named timer."""
        timer = self.timer(name)
        start = time.perf_counter()
        try:
            yield timer
        finally:
            timer.observe(time.perf_counter() - start)

    def reset(self) -> None:
        """Drop every metric (test hook)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as one JSON-native dict (the summary event body)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: {"value": g.value, "max": g.max_value, "min": g.min_value}
                    for name, g in sorted(self._gauges.items())
                    if g.touched
                },
                "timers": {
                    name: {
                        "count": t.count,
                        "total_s": t.total_s,
                        "mean_s": t.mean_s,
                        "min_s": t.min_s,
                        "max_s": t.max_s,
                    }
                    for name, t in sorted(self._timers.items())
                    if t.count
                },
            }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:.0f}s"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _fmt_number(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def render_summary_table(registry: MetricRegistry) -> str:
    """The end-of-run summary: every metric, one aligned line each."""
    snapshot = registry.snapshot()
    rows: List[tuple] = []
    for name, value in snapshot["counters"].items():
        rows.append((name, str(value)))
    for name, gauge in snapshot["gauges"].items():
        detail = _fmt_number(gauge["value"])
        if gauge["max"] != gauge["min"]:
            detail += (
                f" (min {_fmt_number(gauge['min'])},"
                f" max {_fmt_number(gauge['max'])})"
            )
        rows.append((name, detail))
    for name, timer in snapshot["timers"].items():
        rows.append(
            (
                name,
                f"n={timer['count']} total={_fmt_seconds(timer['total_s'])} "
                f"mean={_fmt_seconds(timer['mean_s'])} "
                f"max={_fmt_seconds(timer['max_s'])}",
            )
        )
    if not rows:
        return "run summary: no metrics recorded"
    width = max(len(name) for name, _ in rows)
    lines = ["run summary:"]
    lines.extend(f"  {name.ljust(width)}  {detail}" for name, detail in rows)
    return "\n".join(lines)
