"""Event sinks: where structured telemetry goes.

Every event is one flat dict (see :mod:`repro.obs.core` for the
schema).  Sinks are deliberately tiny -- ``emit`` one event, ``close``
when the run ends -- so new destinations (a socket, a metrics gateway)
are one class away.

The JSON-lines sink opens its file in append mode and writes each event
as a single line-buffered ``write`` call, so events appended by forked
worker processes sharing the file descriptor land as whole lines.
"""

from __future__ import annotations

import io
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LEVEL_NAMES",
    "level_of",
    "Sink",
    "StderrSink",
    "JsonLinesSink",
    "MemorySink",
]

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LEVEL_NAMES: Dict[int, str] = {
    DEBUG: "debug",
    INFO: "info",
    WARNING: "warning",
    ERROR: "error",
}

_NAME_LEVELS = {name: level for level, name in LEVEL_NAMES.items()}


def level_of(event: Dict[str, Any]) -> int:
    """Numeric level of an event (events carry the level *name*)."""
    return _NAME_LEVELS.get(event.get("level", "info"), INFO)


class Sink:
    """Interface: receive events, release resources at the end."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


def _format_human(event: Dict[str, Any]) -> str:
    """One human-readable line: ``kind`` first, then ``key=value`` pairs."""
    kind = event.get("kind", "event")
    parts = [str(kind)]
    skip = {"ts", "kind", "level"}
    if kind == "span":
        name = event.get("name", "?")
        wall = event.get("wall_s", 0.0)
        indent = "  " * int(event.get("depth", 0) or 0)
        parts = [f"{indent}span {name} [{wall * 1e3:.1f}ms]"]
        skip |= {"name", "wall_s", "depth"}
    elif kind == "log":
        parts = [str(event.get("message", ""))]
        skip.add("message")
    for key, value in event.items():
        if key in skip:
            continue
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


class StderrSink(Sink):
    """Human-readable log lines on stderr, filtered by level."""

    def __init__(
        self, min_level: int = INFO, stream: Optional[TextIO] = None
    ) -> None:
        self.min_level = min_level
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        # Resolved per write so pytest's capture and CLI redirection work.
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, event: Dict[str, Any]) -> None:
        if level_of(event) < self.min_level:
            return
        level = event.get("level", "info")
        prefix = "" if level == "info" else f"{str(level).upper()} "
        try:
            self.stream.write(f"[pai-repro] {prefix}{_format_human(event)}\n")
        except (OSError, ValueError):  # closed/broken stderr: drop, never raise
            pass


class JsonLinesSink(Sink):
    """Machine-readable event log: one JSON object per line, appended."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[io.TextIOBase] = None

    def _ensure_open(self) -> io.TextIOBase:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Line buffering: each event is flushed as one whole line, so
            # forked workers appending concurrently cannot shear a line.
            self._handle = open(
                self.path, "a", buffering=1, encoding="utf-8"
            )
        return self._handle

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        try:
            self._ensure_open().write(line + "\n")
        except OSError:  # disk full / unwritable path: telemetry never kills a run
            pass

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()


class MemorySink(Sink):
    """Keeps every event in a list (for tests and programmatic use)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [event for event in self.events if event.get("kind") == kind]
