"""The single-pass dispatch walker.

One recursive traversal of the AST serves every rule: each node is
offered to the rules that declared a ``visit_<NodeType>`` method, via
the dispatch table built by :func:`repro.lint.registry.dispatch_table`.
The walker also maintains ``ctx.scope`` (the stack of enclosing
function/class nodes) so rules can ask "am I inside a function?" or
compute the enclosing qualified name without walking the tree again.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .context import FileContext
from .findings import Finding
from .registry import Rule, dispatch_table, iter_findings

__all__ = ["run_pass"]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def run_pass(ctx: FileContext, rules: Iterable[Rule]) -> List[Finding]:
    """Walk ``ctx.tree`` once, dispatching every node to every rule.

    Returns the per-file findings from the ``visit_*`` hooks followed by
    each rule's ``finish_file`` findings.  Suppression and baseline
    filtering happen later, in the engine.
    """
    rules = list(rules)
    table = dispatch_table(rules)
    findings: List[Finding] = []

    def visit(node: ast.AST) -> None:
        handlers = table.get(type(node).__name__)
        if handlers:
            for _rule, method in handlers:
                findings.extend(iter_findings(method(ctx, node)))
        scoped = isinstance(node, _SCOPE_NODES)
        if scoped:
            ctx.scope.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                visit(child)
        finally:
            if scoped:
                ctx.scope.pop()

    visit(ctx.tree)
    for rule in rules:
        findings.extend(iter_findings(rule.finish_file(ctx)))
    return findings
