"""Rendering: human one-liners and JSON-lines in the obs event schema.

The JSON format is one event object per line, using the exact field
conventions of :mod:`repro.obs` (``ts`` / ``kind`` / ``level`` plus
flat payload fields): ``lint.finding`` events followed by one
``lint.summary``.  A consumer of ``--log-json`` telemetry can ingest
lint output unchanged.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List

from .engine import LintResult

__all__ = ["render_human", "render_jsonl", "summary_event"]


def summary_event(result: LintResult) -> Dict[str, Any]:
    """The run-level ``lint.summary`` event."""
    return {
        "ts": time.time(),
        "kind": "lint.summary",
        "level": "info" if result.ok else "warning",
        "files": result.files,
        "rules": list(result.rule_ids),
        "findings": len(result.findings),
        "baselined": len(result.baselined),
        "suppressed": result.suppressed,
        "unused_baseline": len(result.unused_baseline),
        "analyzed": len(result.analyzed_files),
        "cached": len(result.cached_files),
    }


def render_jsonl(result: LintResult) -> str:
    """Machine-readable output: one obs-schema event per line."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(json.dumps(finding.to_event(), sort_keys=True))
    lines.append(json.dumps(summary_event(result), sort_keys=True))
    return "\n".join(lines) + "\n"


def render_human(result: LintResult) -> str:
    """Human-readable output: findings, then a one-line summary."""
    lines: List[str] = [finding.render() for finding in result.findings]
    summary = (
        f"repro.lint: {len(result.findings)} finding(s) in "
        f"{result.files} file(s) "
        f"({len(result.baselined)} baselined, {result.suppressed} suppressed; "
        f"rules: {', '.join(result.rule_ids)})"
    )
    if result.cached_files:
        summary += (
            f"\nincremental: {len(result.analyzed_files)} analyzed, "
            f"{len(result.cached_files)} served from cache"
        )
    if result.unused_baseline:
        stale = ", ".join(
            f"{entry.rule}:{entry.path}" for entry in result.unused_baseline
        )
        summary += f"\nstale baseline entries (fixed? remove them): {stale}"
    lines.append(summary)
    return "\n".join(lines) + "\n"
