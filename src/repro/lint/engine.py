"""The analysis driver: files in, filtered findings out.

Execution is two-phase:

1. **Per-file** (parallelizable with ``jobs > 1``): parse, run the
   single dispatch pass (:func:`repro.lint.visitor.run_pass`), apply
   inline suppressions, and collect each project rule's picklable
   summary.  Files are independent, so this phase forks a process pool
   exactly like the experiment suite does.
2. **Project** (parent process): rules with ``check_project`` consume
   the gathered summaries and yield cross-file findings -- the
   determinism call graph lives here.

Baseline filtering applies last, to per-file and project findings
alike.  The engine reports through :mod:`repro.obs` (one
``lint.finding`` event per finding, counters for the totals), so a
``--log-json`` run captures lint traffic in the same event stream as
everything else.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs import DEBUG, get_obs
from .baseline import Baseline
from .cache import AnalysisCache
from .context import FileContext
from .findings import Finding, finding_sort_key
from .registry import Rule, instantiate, iter_findings
from .visitor import run_pass

__all__ = ["LintResult", "lint_paths", "lint_source", "assert_clean"]


@dataclass
class LintResult:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    rule_ids: List[str] = field(default_factory=list)
    unused_baseline: List[Any] = field(default_factory=list)
    #: Files whose per-file phase actually ran this invocation.
    analyzed_files: List[str] = field(default_factory=list)
    #: Files served from the incremental analysis cache.
    cached_files: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


#: ``(findings, suppressed_count, summaries)`` from one worker.
_FileOutcome = Tuple[List[Finding], int, Dict[str, Any]]


def _analyze_one(
    path_text: str, rule_ids: Sequence[str]
) -> _FileOutcome:
    """Per-file phase for one path.  Module-level so pools can pickle it."""
    path = Path(path_text)
    rules = instantiate(rule_ids)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError, UnicodeDecodeError, OSError) as exc:
        finding = Finding(
            rule="parse-error",
            path=str(path),
            line=getattr(exc, "lineno", None) or 1,
            col=getattr(exc, "offset", None) or 0,
            message=f"file does not parse: {exc}",
        )
        return ([finding], 0, {})
    ctx = FileContext(path, source, tree)
    raw = run_pass(ctx, rules)
    findings: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if ctx.suppressed(finding.rule, finding.line):
            suppressed += 1
        else:
            findings.append(finding)
    summaries: Dict[str, Any] = {}
    for rule in rules:
        summary = rule.summarize(ctx)
        if summary is not None:
            summaries[rule.id] = summary
    return (findings, suppressed, summaries)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Dict[Path, None] = {}
    for item in paths:
        path = Path(item)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen.setdefault(candidate, None)
        elif path.suffix == ".py" or path.is_file():
            seen.setdefault(path, None)
    return list(seen)


def lint_paths(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Sequence[str]] = None,
    jobs: int = 1,
    baseline: Optional[Baseline] = None,
    cache: Optional[AnalysisCache] = None,
) -> LintResult:
    """Run the engine over files and directories.

    Args:
        paths: Files and/or directories (recursed for ``*.py``).
        rules: Rule ids to run; defaults to every registered rule.
        jobs: Worker processes for the per-file phase; ``1`` runs
            in-process.
        baseline: Grandfathered findings to subtract.
        cache: Incremental analysis cache; per-file outcomes for
            unchanged files are served from it, only misses run
            (the project phase always reruns over all summaries).

    Returns:
        A :class:`LintResult`; ``result.ok`` is the pass/fail verdict.
    """
    rule_instances = instantiate(rules)
    rule_ids = [rule.id for rule in rule_instances]
    files = iter_python_files(paths)

    # Consult the cache in the parent: workers stay pure analyzers and
    # the cache directory sees exactly one writer per entry per run.
    outcome_by_file: Dict[Path, _FileOutcome] = {}
    cache_keys: Dict[Path, str] = {}
    cached_files: List[str] = []
    if cache is not None:
        for path in files:
            try:
                source = path.read_bytes()
            except OSError:
                continue  # the analyzer will report it as a parse error
            key = cache.key(source, rule_ids)
            cache_keys[path] = key
            hit = cache.get(key)
            if hit is not None:
                outcome_by_file[path] = hit
                cached_files.append(str(path))
    to_analyze = [path for path in files if path not in outcome_by_file]

    obs = get_obs()
    with obs.trace(
        "lint.files",
        files=len(files),
        jobs=jobs,
        cached=len(cached_files),
    ):
        if jobs > 1 and len(to_analyze) > 1:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(to_analyze))
            ) as pool:
                fresh = list(
                    pool.map(
                        _analyze_one,
                        [str(path) for path in to_analyze],
                        [rule_ids] * len(to_analyze),
                        chunksize=8,
                    )
                )
        else:
            fresh = [_analyze_one(str(path), rule_ids) for path in to_analyze]
    for path, outcome in zip(to_analyze, fresh):
        outcome_by_file[path] = outcome
        if cache is not None and path in cache_keys:
            cache.put(cache_keys[path], outcome)
    obs.metrics.counter("lint.cache.hits").inc(len(cached_files))
    obs.metrics.counter("lint.cache.misses").inc(len(to_analyze))

    all_findings: List[Finding] = []
    suppressed = 0
    summaries: Dict[str, List[Any]] = {}
    for path in files:
        findings, file_suppressed, file_summaries = outcome_by_file[path]
        all_findings.extend(findings)
        suppressed += file_suppressed
        for rule_id, summary in file_summaries.items():
            summaries.setdefault(rule_id, []).append(summary)

    with obs.trace("lint.project"):
        for rule in rule_instances:
            if type(rule).check_project is Rule.check_project:
                continue
            all_findings.extend(
                iter_findings(rule.check_project(summaries.get(rule.id, [])))
            )

    result = LintResult(
        suppressed=suppressed,
        files=len(files),
        rule_ids=rule_ids,
        analyzed_files=[str(path) for path in to_analyze],
        cached_files=cached_files,
    )
    for finding in sorted(all_findings, key=finding_sort_key):
        if baseline is not None and baseline.match(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    if baseline is not None:
        result.unused_baseline = baseline.unused()

    obs.metrics.counter("lint.findings").inc(len(result.findings))
    obs.metrics.counter("lint.baselined").inc(len(result.baselined))
    obs.metrics.counter("lint.suppressed").inc(suppressed)
    # Debug level: the CLI already owns the user-facing rendering; the
    # JSON-lines sink records every event regardless of level.
    for finding in result.findings:
        obs.event("lint.finding", level=DEBUG, **_event_fields(finding))
    return result


def _event_fields(finding: Finding) -> Dict[str, Any]:
    fields = finding.to_event()
    for reserved in ("ts", "kind", "level"):
        fields.pop(reserved, None)
    return fields


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one in-memory source string (both phases).

    The unit-test workhorse: inline fixtures run through exactly the
    engine code paths, with ``module`` overriding the dotted module
    name (so layering fixtures can claim to be ``repro.core.x``).
    """
    rule_instances = instantiate(rules)
    tree = ast.parse(source, filename=filename)
    ctx = FileContext(Path(filename), source, tree, module=module)
    raw = run_pass(ctx, rule_instances)
    findings = [
        finding
        for finding in raw
        if not ctx.suppressed(finding.rule, finding.line)
    ]
    for rule in rule_instances:
        if type(rule).check_project is Rule.check_project:
            continue
        summary = rule.summarize(ctx)
        summaries = [summary] if summary is not None else []
        findings.extend(iter_findings(rule.check_project(summaries)))
    return sorted(findings, key=finding_sort_key)


def assert_clean(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
) -> LintResult:
    """The pytest bridge: raise ``AssertionError`` listing any findings."""
    result = lint_paths(paths, rules=rules, jobs=jobs, baseline=baseline)
    if not result.ok:
        rendered = "\n".join(f.render() for f in result.findings)
        raise AssertionError(
            f"repro.lint found {len(result.findings)} problem(s):\n{rendered}"
        )
    return result
