"""SARIF 2.1.0 output: lint findings as CI-native code annotations.

One run object, one ``tool.driver`` describing every rule that ran
(title/rationale/suggestion map onto SARIF's short/full description and
help), one result per finding.  GitHub's code-scanning upload consumes
this directly, turning findings into inline PR annotations; any other
SARIF viewer works the same way.

Baselined findings are emitted with ``"baselineState": "unchanged"`` so
viewers can show the grandfathered debt without failing the run; fresh
findings carry ``"baselineState": "new"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .findings import Finding
from .registry import all_rules

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule_id: str) -> Dict[str, Any]:
    rule = all_rules().get(rule_id)
    if rule is None:  # e.g. the synthetic parse-error pseudo-rule
        return {"id": rule_id}
    return {
        "id": rule_id,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "help": {"text": rule.suggestion},
        "defaultConfiguration": {"level": "warning"},
    }


def _result(finding: Finding, baseline_state: str) -> Dict[str, Any]:
    region: Dict[str, Any] = {"startLine": max(1, finding.line)}
    if finding.col:
        region["startColumn"] = finding.col + 1  # SARIF columns are 1-based
    if finding.context:
        region["snippet"] = {"text": finding.context}
    return {
        "ruleId": finding.rule,
        "level": "warning",
        "message": {"text": finding.message},
        "baselineState": baseline_state,
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        # The invocation-relative path: CI runs from the
                        # repo root, which is what annotation needs.
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "ROOT",
                    },
                    "region": region,
                }
            }
        ],
    }


def to_sarif(result: Any) -> Dict[str, Any]:
    """A :class:`~repro.lint.engine.LintResult` as a SARIF log dict."""
    rule_ids: List[str] = sorted(
        set(result.rule_ids)
        | {finding.rule for finding in result.findings}
        | {finding.rule for finding in result.baselined}
    )
    results = [_result(finding, "new") for finding in result.findings]
    results += [_result(finding, "unchanged") for finding in result.baselined]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [_rule_descriptor(r) for r in rule_ids],
                    }
                },
                "originalUriBaseIds": {"ROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(result: Any) -> str:
    return json.dumps(to_sarif(result), indent=2, sort_keys=True) + "\n"
