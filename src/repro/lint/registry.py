"""The rule registry: one place every analysis is declared.

A rule is a class deriving from :class:`Rule` and decorated with
:func:`register`.  Rules hook into the engine three ways, all optional:

* ``visit_<NodeType>(ctx, node)`` -- called from the engine's *single*
  AST pass for every matching node; yields findings.  One walk serves
  every rule: the dispatch table is built once per file from the
  registered rules' method names.
* ``finish_file(ctx)`` -- called after the walk; yields findings that
  need whole-file context.
* ``summarize(ctx)`` / ``check_project(summaries)`` -- the project
  phase.  ``summarize`` returns a *picklable* per-file summary (it runs
  in worker processes under ``--jobs``); ``check_project`` runs once in
  the parent over all summaries and yields cross-file findings
  (call-graph reachability, for example).

Rules must be stateless across files: per-file scratch belongs in
``ctx.state[rule_id]``, never on ``self``.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .context import FileContext
from .findings import Finding

__all__ = ["Rule", "register", "all_rules", "rule_ids", "get_rule"]


class Rule:
    """Base class for lint rules; subclass, set the metadata, register."""

    #: Kebab-case identifier used in output, suppressions and baselines.
    id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the rule exists -- rendered into the docs catalog.
    rationale: str = ""
    #: How to fix or legitimately suppress a finding.
    suggestion: str = ""

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        *,
        context: Optional[str] = None,
    ) -> Finding:
        return ctx.finding(self.id, node, message, context=context)

    # ---- optional hooks (see module docstring) --------------------

    def finish_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def summarize(self, ctx: FileContext) -> Optional[Any]:
        return None

    def check_project(self, summaries: List[Any]) -> Iterable[Finding]:
        return ()


#: id -> rule class.  Populated at import time by :func:`register`;
#: read-only afterwards, so fork-pooled workers inherit a complete map.
_RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} must set a non-empty id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    if not cls.rationale or not cls.suggestion:
        raise ValueError(f"rule {cls.id!r} must document rationale and suggestion")
    _RULES[cls.id] = cls  # repro: ignore[fork-safety] import-time registration only
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The full registry (importing the bundled rules on first use)."""
    from . import rules  # noqa: F401  -- registers the built-in rules

    return dict(_RULES)


def rule_ids() -> List[str]:
    return sorted(all_rules())


def get_rule(rule_id: str) -> Type[Rule]:
    try:
        return all_rules()[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def instantiate(
    only: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Fresh rule instances, optionally restricted to ``only`` ids."""
    registry = all_rules()
    if only is None:
        selected = list(registry)
    else:
        selected = list(only)
        unknown = [rule_id for rule_id in selected if rule_id not in registry]
        if unknown:
            raise KeyError(
                f"unknown rules: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}"
            )
    return [registry[rule_id]() for rule_id in selected]


def dispatch_table(
    rules: Iterable[Rule],
) -> Dict[str, List[Tuple[Rule, Any]]]:
    """Node-type-name -> [(rule, bound visit method)] for one pass."""
    table: Dict[str, List[Tuple[Rule, Any]]] = {}
    for rule in rules:
        for name in dir(type(rule)):
            if not name.startswith("visit_"):
                continue
            node_type = name[len("visit_"):]
            table.setdefault(node_type, []).append((rule, getattr(rule, name)))
    return table


def iter_findings(result: Optional[Iterable[Finding]]) -> Iterator[Finding]:
    """Normalize a hook's return value (None or iterable of findings)."""
    if result is None:
        return iter(())
    return iter(result)
