"""Inline suppressions: ``# repro: ignore[rule-id]`` comments.

A finding is suppressed when its reported line carries an ignore comment
naming its rule (or a bare ``# repro: ignore``, which suppresses every
rule on that line).  Multiple ids are comma-separated::

    CACHE.clear()  # repro: ignore[fork-safety] per-process memo by design
    x = foo()      # repro: ignore[determinism, api-hygiene]
    y = bar()      # repro: ignore

Rules report findings at a statement's *first* physical line, so the
marker does not have to sit on the exact token that fired:

* a trailing comment anywhere inside a multi-line statement registers
  at the statement's first line as well as its own::

      value = compute(
          argument,
      )  # repro: ignore[units-hygiene] suppresses the line-1 finding

* a comment on its own line attaches to the next statement -- the
  idiom for justifications too long for a trailing comment::

      # repro: ignore[hot-path] figure API contract returns List[float]
      return samples.tolist()

Comments are extracted with :mod:`tokenize`, so the marker inside a
string literal or docstring never suppresses anything.  (Suppressing a
finding on a ``def``/``class`` line from one of its decorator lines is
the file context's job -- it has the AST; see
:meth:`repro.lint.context.FileContext.suppressed`.)
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["SUPPRESS_ALL", "parse_suppressions", "is_suppressed"]

#: Sentinel stored for a bare ``# repro: ignore`` (all rules).
SUPPRESS_ALL: FrozenSet[str] = frozenset({"*"})

_MARKER = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)

#: Tokens that neither start nor belong to a logical line.
_INERT = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    }
)


def _parse_ids(comment: str) -> Optional[FrozenSet[str]]:
    match = _MARKER.search(comment)
    if match is None:
        return None
    spec = match.group("rules")
    if spec is None:
        return SUPPRESS_ALL
    ids = frozenset(part.strip() for part in spec.split(",") if part.strip())
    return ids or SUPPRESS_ALL


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> frozenset of suppressed rule ids.

    Bare markers map to :data:`SUPPRESS_ALL`.  Source that fails to
    tokenize yields no suppressions (the engine reports the parse error
    separately).
    """
    suppressions: Dict[int, FrozenSet[str]] = {}

    def add(line: int, ids: FrozenSet[str]) -> None:
        suppressions[line] = suppressions.get(line, frozenset()) | ids

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions

    #: First line of the logical statement currently being tokenized.
    logical_start: Optional[int] = None
    #: Markers from standalone comment lines awaiting their statement.
    pending: List[Tuple[int, FrozenSet[str]]] = []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            ids = _parse_ids(token.string)
            if ids is None:
                continue
            add(token.start[0], ids)
            if logical_start is not None:
                # Trailing comment: also cover the statement's first
                # line, where multi-line statements report findings.
                add(logical_start, ids)
            else:
                pending.append((token.start[0], ids))
        elif token.type == tokenize.NEWLINE:
            logical_start = None
        elif token.type not in _INERT:
            if logical_start is None:
                logical_start = token.start[0]
                for _comment_line, ids in pending:
                    add(logical_start, ids)
                pending.clear()
    return suppressions


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], rule_id: str, line: int
) -> bool:
    """Whether ``rule_id`` is suppressed on ``line``."""
    ids: Optional[FrozenSet[str]] = suppressions.get(line)
    if ids is None:
        return False
    return "*" in ids or rule_id in ids
