"""Inline suppressions: ``# repro: ignore[rule-id]`` comments.

A finding is suppressed when the physical line it is reported on carries
an ignore comment naming its rule (or a bare ``# repro: ignore``, which
suppresses every rule on that line).  Multiple ids are comma-separated::

    CACHE.clear()  # repro: ignore[fork-safety] per-process memo by design
    x = foo()      # repro: ignore[determinism, api-hygiene]
    y = bar()      # repro: ignore

Comments are extracted with :mod:`tokenize`, so the marker inside a
string literal or docstring never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

__all__ = ["SUPPRESS_ALL", "parse_suppressions", "is_suppressed"]

#: Sentinel stored for a bare ``# repro: ignore`` (all rules).
SUPPRESS_ALL: FrozenSet[str] = frozenset({"*"})

_MARKER = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> frozenset of suppressed rule ids.

    Bare markers map to :data:`SUPPRESS_ALL`.  Source that fails to
    tokenize yields no suppressions (the engine reports the parse error
    separately).
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            ids = SUPPRESS_ALL
        else:
            ids = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
            if not ids:
                ids = SUPPRESS_ALL
        line = token.start[0]
        suppressions[line] = suppressions.get(line, frozenset()) | ids
    return suppressions


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], rule_id: str, line: int
) -> bool:
    """Whether ``rule_id`` is suppressed on ``line``."""
    ids: Optional[FrozenSet[str]] = suppressions.get(line)
    if ids is None:
        return False
    return "*" in ids or rule_id in ids
