"""Content-addressed cache for the per-file analysis phase.

A file's per-file outcome -- findings, suppression count, project-rule
summaries -- is a pure function of three inputs: the file's bytes, the
rule set that ran, and the analyzer's own code.  The cache keys on
exactly that triple (all three folded into one SHA-256), so a warm run
re-analyzes only files whose content changed since the last run, while
any edit to the lint package itself (:func:`rules_signature`) or to the
requested rule list invalidates everything at once -- there is no
version counter to forget to bump.

Entries are one JSON file per key under the cache directory, written
with the repo's tmp + ``os.replace`` idiom, so concurrent lint runs
sharing a cache directory race benignly: both compute the same bytes
and the last rename wins.  Corrupt or unreadable entries behave as
misses.  Project-phase findings are *not* cached -- they depend on
every file's summary, and recomputing them from (mostly cached)
summaries is cheap.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["AnalysisCache", "rules_signature"]

#: Bumped only for semantic changes to the entry layout itself.
_FORMAT = 1

_signature_memo: Dict[str, str] = {}  # repro: ignore[fork-safety] per-process memo


def rules_signature() -> str:
    """SHA-256 over the lint package's own source files.

    Any edit to the engine, a rule, the CFG builder... changes this
    digest and therefore every cache key.  Hashing a few dozen small
    files costs ~1ms and is memoized per process.
    """
    package_dir = str(Path(__file__).parent)
    memoized = _signature_memo.get(package_dir)
    if memoized is not None:
        return memoized
    digest = hashlib.sha256()
    for source in sorted(Path(package_dir).rglob("*.py")):
        digest.update(str(source.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    signature = digest.hexdigest()
    _signature_memo[package_dir] = signature  # repro: ignore[fork-safety] per-process memo
    return signature


#: The cached shape of one file's per-file phase.
Outcome = Tuple[List[Finding], int, Dict[str, Any]]


class AnalysisCache:
    """One directory of content-addressed per-file outcomes."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def key(self, source: bytes, rule_ids: Sequence[str]) -> str:
        """The cache key for ``source`` analyzed under ``rule_ids``."""
        digest = hashlib.sha256()
        digest.update(f"format:{_FORMAT}\0".encode())
        digest.update(rules_signature().encode())
        digest.update(b"\0")
        digest.update(",".join(sorted(rule_ids)).encode())
        digest.update(b"\0")
        digest.update(source)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Outcome]:
        """The cached outcome, or None on miss/corruption."""
        try:
            payload = json.loads(
                self._entry_path(key).read_text(encoding="utf-8")
            )
            findings = [Finding(**raw) for raw in payload["findings"]]
            return (findings, payload["suppressed"], payload["summaries"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, outcome: Outcome) -> bool:
        """Store one outcome; False when it cannot be serialized.

        Summaries must survive a JSON round-trip (tuples come back as
        lists -- consumers accept both); a rule whose summary does not
        serialize keeps the file analyzable, just never cached.
        """
        findings, suppressed, summaries = outcome
        try:
            body = json.dumps(
                {
                    "findings": [asdict(finding) for finding in findings],
                    "suppressed": suppressed,
                    "summaries": summaries,
                },
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return False
        target = self._entry_path(key)
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(body, encoding="utf-8")
            os.replace(tmp, target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return True
