"""The committed baseline: grandfathered findings with justifications.

The baseline file is JSON so diffs review well::

    {
      "version": 1,
      "entries": [
        {
          "rule": "fork-safety",
          "path": "repro/obs/core.py",
          "context": "global _OBS",
          "reason": "process-local singleton by design; workers inherit it"
        }
      ]
    }

Entries match findings by ``(rule, pkg_path, context)`` -- no line
numbers, so unrelated edits do not churn the file.  One entry matches
every finding with that key (e.g. the same ``global _OBS`` statement in
two functions).  ``python -m repro.lint --write-baseline`` regenerates
the file from the current findings; the one-line ``reason`` is then
filled in by hand and reviewed like code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline", "write_baseline"]

_PLACEHOLDER_REASON = "grandfathered; justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    reason: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.context)


class Baseline:
    """An in-memory baseline, loaded once per run."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        self._matched: set = set()

    @classmethod
    def load(cls, path: Union[str, Path], *, strict: bool = True) -> "Baseline":
        """Parse a baseline file.

        Strict loading (the default, what the CLI and the pytest bridge
        use) refuses entries without a non-empty ``reason``: a baseline
        entry is a reviewed exemption, and an exemption nobody can
        justify is just a muted finding.  ``strict=False`` is for
        ``--write-baseline`` itself, which must read a half-annotated
        file to preserve the reasons that do exist.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != 1:
            raise ValueError(f"unsupported baseline version: {version!r}")
        entries = [
            BaselineEntry(
                rule=entry["rule"],
                path=entry["path"],
                context=entry.get("context", ""),
                reason=entry.get("reason", ""),
            )
            for entry in payload.get("entries", [])
        ]
        if strict:
            unjustified = [e for e in entries if not e.reason.strip()]
            if unjustified:
                listed = ", ".join(
                    f"{e.rule} @ {e.path}" for e in unjustified[:5]
                )
                raise ValueError(
                    f"{len(unjustified)} baseline entr"
                    f"{'y' if len(unjustified) == 1 else 'ies'} without a "
                    f"reason ({listed}); every exemption needs its one-line "
                    "justification"
                )
        return cls(entries)

    def write(self, path: Union[str, Path]) -> int:
        """Serialize this baseline back to ``path`` (sorted, stable)."""
        ordered = sorted(self.entries, key=lambda e: e.key())
        payload = {
            "version": 1,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "context": entry.context,
                    "reason": entry.reason,
                }
                for entry in ordered
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        return len(ordered)

    def match(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered (marks the entry used)."""
        key = finding.key()
        if key in self._by_key:
            self._matched.add(key)
            return True
        return False

    def unused(self) -> List[BaselineEntry]:
        """Entries that matched nothing -- stale, candidates for removal."""
        return [e for e in self.entries if e.key() not in self._matched]


def write_baseline(
    findings: Iterable[Finding], path: Union[str, Path]
) -> int:
    """Write ``findings`` as a fresh baseline; returns the entry count.

    Duplicate keys collapse to one entry.  Existing reasons at ``path``
    are preserved for entries that survive the regeneration.
    """
    path = Path(path)
    existing: Dict[Tuple[str, str, str], str] = {}
    if path.exists():
        try:
            for entry in Baseline.load(path, strict=False).entries:
                existing[entry.key()] = entry.reason
        except (ValueError, KeyError, json.JSONDecodeError):
            pass
    entries: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        key = finding.key()
        entries[key] = BaselineEntry(
            rule=finding.rule,
            path=finding.pkg_path or finding.path,
            context=finding.context,
            reason=existing.get(key) or _PLACEHOLDER_REASON,
        )
    ordered = sorted(entries.values(), key=lambda e: e.key())
    payload = {
        "version": 1,
        "entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "context": entry.context,
                "reason": entry.reason,
            }
            for entry in ordered
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(ordered)
