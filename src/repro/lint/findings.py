"""The unit of lint output: one :class:`Finding` per violation.

A finding carries two paths:

* ``path`` -- the filesystem path the engine was invoked with, used for
  display (clickable ``path:line:col`` references);
* ``pkg_path`` -- the package-relative path (``repro/obs/core.py``),
  stable across checkouts and invocation directories, used for baseline
  matching and rule allowlists.

Baseline matching is deliberately line-number free: a finding's
:meth:`Finding.key` is ``(rule, pkg_path, context)`` so that unrelated
edits moving code up or down the file do not invalidate the committed
baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["Finding", "finding_sort_key"]

#: Maximum length of the offending-source snippet carried by a finding.
MAX_CONTEXT = 80


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = ""
    pkg_path: str = field(default="", compare=False)

    def key(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.pkg_path or self.path, self.context)

    def render(self) -> str:
        """The human-readable one-liner: ``path:line:col: rule message``."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.context:
            text += f"\n    {self.context}"
        return text

    def to_event(self) -> Dict[str, Any]:
        """The finding as a :mod:`repro.obs`-schema event dict."""
        return {
            "ts": time.time(),
            "kind": "lint.finding",
            "level": "warning",
            "rule": self.rule,
            "path": self.path,
            "pkg_path": self.pkg_path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }


def finding_sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    """Stable presentation order: by file, then position, then rule."""
    return (finding.path, finding.line, finding.col, finding.rule)
