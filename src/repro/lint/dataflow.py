"""A worklist dataflow engine over :mod:`repro.lint.cfg` graphs.

:func:`run_forward` iterates any :class:`ForwardAnalysis` to a fixpoint:
block in-states are the join over predecessor out-states, out-states are
the fold of the analysis's ``transfer`` across the block's elements.
States must be immutable values with structural equality (frozensets of
tuples are the convention) -- the engine terminates when no block's
in-state changes, and raises if a buggy analysis fails to converge
within a generous bound.

Three abstract states ship with the engine:

* :class:`ReachingDefinitions` -- the classic ``(name, line)`` def sets;
* :class:`HeldLocks` -- which ``with <dotted-path>:`` acquisitions
  enclose each program point, released exactly at the matching
  :class:`~repro.lint.cfg.WithExit` marker;
* :class:`OpenResources` -- handles and tmp files born at calls the
  caller classifies, killed by ``close``/``os.replace``/``unlink``,
  context management, or escape (returned, stored, passed along).

All three join with set union: a fact holds at a point if it holds on
*some* path there, which is the right polarity for "a lock might not be
held" and "a handle might still be open" questions.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from .cfg import CFG, Element, WithExit, walk_element

__all__ = [
    "ForwardAnalysis",
    "DataflowResult",
    "run_forward",
    "ReachingDefinitions",
    "HeldLocks",
    "OpenResources",
    "Resource",
    "assigned_names",
    "dotted_path",
]


class ForwardAnalysis:
    """One forward dataflow problem: initial state, join, transfer."""

    def initial(self) -> FrozenSet:
        return frozenset()

    def join(self, states: List[FrozenSet]) -> FrozenSet:
        merged: FrozenSet = frozenset()
        for state in states:
            merged = merged | state
        return merged

    def transfer(self, state: FrozenSet, element: Element) -> FrozenSet:
        raise NotImplementedError


class DataflowResult:
    """Per-block fixpoint states plus per-element replay."""

    def __init__(self, cfg: CFG, analysis: ForwardAnalysis) -> None:
        self.cfg = cfg
        self.analysis = analysis
        self.block_in: Dict[int, FrozenSet] = {}

    def states(self) -> Iterator[Tuple[Element, FrozenSet]]:
        """Yield ``(element, state-before-element)`` for every reachable
        element, replaying transfers inside each block."""
        for block_id in sorted(self.block_in):
            state = self.block_in[block_id]
            for element in self.cfg.blocks[block_id].elements:
                yield element, state
                state = self.analysis.transfer(state, element)

    def at_exit(self) -> FrozenSet:
        return self.block_in.get(self.cfg.exit, self.analysis.initial())


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis, max_passes: int = 1000
) -> DataflowResult:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint (worklist order).

    Only blocks reachable from the entry participate; dead code neither
    contributes states nor appears in the result.  Raises
    ``RuntimeError`` if the analysis fails to converge -- with union
    joins over finite fact sets that can only mean a broken transfer.
    """
    result = DataflowResult(cfg, analysis)
    reachable = cfg.reachable()
    result.block_in[cfg.entry] = analysis.initial()
    out: Dict[int, FrozenSet] = {}
    worklist: List[int] = [cfg.entry]
    passes = 0
    while worklist:
        passes += 1
        if passes > max_passes * max(1, len(cfg.blocks)):
            raise RuntimeError(
                "dataflow failed to converge "
                f"({passes} passes over {len(cfg.blocks)} blocks)"
            )
        block_id = worklist.pop(0)
        block = cfg.blocks[block_id]
        preds = [p for p in block.preds if p in out]
        if block_id == cfg.entry:
            in_state = analysis.initial()
            if preds:  # a loop back-edge into the entry is impossible,
                in_state = analysis.join([in_state] + [out[p] for p in preds])
        else:
            in_state = analysis.join([out[p] for p in preds])
        result.block_in[block_id] = in_state
        state = in_state
        for element in block.elements:
            state = analysis.transfer(state, element)
        if out.get(block_id) != state:
            out[block_id] = state
            for succ in block.succs:
                if succ in reachable and succ not in worklist:
                    worklist.append(succ)
    # Blocks never visited (unreachable) are dropped from the result.
    return result


# ---------------------------------------------------------------------
# shared AST helpers


def dotted_path(node: ast.AST) -> Optional[str]:
    """``self._lock`` -> ``"self._lock"``; None for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def assigned_names(element: Element) -> List[Tuple[str, int]]:
    """Names (re)bound by one element, with the binding line."""
    bound: List[Tuple[str, int]] = []

    def targets_of(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.append((target.id, target.lineno))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for inner in target.elts:
                targets_of(inner)
        elif isinstance(target, ast.Starred):
            targets_of(target.value)

    if isinstance(element, ast.Assign):
        for target in element.targets:
            targets_of(target)
    elif isinstance(element, (ast.AnnAssign, ast.AugAssign)):
        targets_of(element.target)
    elif isinstance(element, (ast.For, ast.AsyncFor)):
        targets_of(element.target)
    elif isinstance(element, (ast.With, ast.AsyncWith)):
        for item in element.items:
            if item.optional_vars is not None:
                targets_of(item.optional_vars)
    elif isinstance(element, ast.ExceptHandler):
        if element.name:
            bound.append((element.name, element.lineno))
    elif isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        bound.append((element.name, element.lineno))
    elif isinstance(element, (ast.Import, ast.ImportFrom)):
        for alias in element.names:
            local = alias.asname or alias.name.split(".")[0]
            bound.append((local, element.lineno))
    return bound


# ---------------------------------------------------------------------
# bundled analyses


class ReachingDefinitions(ForwardAnalysis):
    """Facts: ``(name, line)`` -- the definition of ``name`` at ``line``
    may reach this point."""

    def transfer(self, state: FrozenSet, element: Element) -> FrozenSet:
        bound = assigned_names(element)
        if not bound:
            return state
        killed = {name for name, _line in bound}
        return frozenset(
            fact for fact in state if fact[0] not in killed
        ) | frozenset(bound)


class HeldLocks(ForwardAnalysis):
    """Facts: ``(dotted-path, with-uid)`` -- the ``with <path>:`` whose
    body encloses this point.

    Only attribute-path context expressions count (``with self._lock:``,
    ``with shard.lock:``); a call result (``with open(p) as f:``) is a
    resource, not a lock.  ``acquire()``/``release()`` calls are not
    modeled -- their extent is not lexical, so a conditional acquire
    cannot be tracked without path sensitivity the rules do not need.
    """

    def held(self, state: FrozenSet) -> FrozenSet[str]:
        return frozenset(path for path, _uid in state)

    def transfer(self, state: FrozenSet, element: Element) -> FrozenSet:
        if isinstance(element, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in element.items:
                path = dotted_path(item.context_expr)
                if path is not None:
                    acquired.append((path, id(element)))
            return state | frozenset(acquired)
        if isinstance(element, WithExit):
            return frozenset(
                (path, owner)
                for path, owner in state
                if owner != id(element.node)
            )
        return state


class Resource(NamedTuple):
    """One live resource: the local it is bound to and where it began."""

    name: str
    line: int
    kind: str  # "handle" or "tmpfile"
    what: str  # human label for the finding message


#: ``classify(call) -> Optional[(kind, label)]`` decides which calls
#: give birth to a tracked resource; name resolution lives with the
#: caller (rules have the import map, the engine does not).
Classifier = Callable[[ast.Call], Optional[Tuple[str, str]]]

#: Method names that retire the receiver as a resource.
_CLOSERS = frozenset({"close", "unlink", "terminate", "shutdown", "release"})

#: ``os.<fn>(target, ...)`` calls that commit or remove their target.
_OS_RETIRERS = frozenset({"replace", "rename", "unlink", "remove"})


class OpenResources(ForwardAnalysis):
    """Facts: :class:`Resource` tuples that may still be live.

    Born at calls the classifier recognizes when bound to a plain local
    (``fh = open(p)``); a call opened as a ``with`` context is managed
    and never tracked.  Retired by ``close()``-style method calls, by
    ``os.replace``/``os.rename``/``os.unlink`` naming the resource (or
    its ``.name``), by ``with fh:`` management, by rebinding -- and by
    any *escape*: returning it, yielding it, storing it in an attribute,
    subscript or other name, or passing it to a call.  Escapes retire
    because ownership moved somewhere this intraprocedural analysis
    cannot see; under-reporting beats a false leak.
    """

    def __init__(self, classify: Classifier) -> None:
        self.classify = classify

    def transfer(self, state: FrozenSet, element: Element) -> FrozenSet:
        if isinstance(element, WithExit):
            return state
        killed: set = set()
        born: List[Resource] = []

        if isinstance(element, ast.Assign) and isinstance(
            element.value, ast.Call
        ):
            classified = self.classify(element.value)
            if classified is not None and len(element.targets) == 1 and (
                isinstance(element.targets[0], ast.Name)
            ):
                kind, what = classified
                name = element.targets[0].id
                killed.add(name)  # rebinding forgets the old one
                born.append(Resource(name, element.lineno, kind, what))

        live_names = {fact.name for fact in state}
        for node in walk_element(element):
            if isinstance(node, ast.Call):
                killed.update(self._call_kills(node, live_names))
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    killed.update(self._names_in(value, live_names))
        killed.update(self._store_escapes(element, live_names))
        for name, _line in assigned_names(element):
            if not born or name != born[0].name:
                killed.add(name)
        if isinstance(element, (ast.With, ast.AsyncWith)):
            for item in element.items:
                if isinstance(item.context_expr, ast.Name):
                    # ``with fh:`` -- context management closes handles,
                    # but a tmp file still needs its commit.
                    killed.update(
                        fact.name
                        for fact in state
                        if fact.name == item.context_expr.id
                        and fact.kind == "handle"
                    )

        if not killed and not born:
            return state
        return frozenset(
            fact for fact in state if fact.name not in killed
        ) | frozenset(born)

    # ---- kill helpers ---------------------------------------------

    @staticmethod
    def _names_in(node: ast.AST, live: set) -> List[str]:
        return [
            inner.id
            for inner in ast.walk(node)
            if isinstance(inner, ast.Name) and inner.id in live
        ]

    def _call_kills(self, call: ast.Call, live: set) -> List[str]:
        kills: List[str] = []
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in live:
                # ``fh.write(...)`` keeps it alive; ``fh.close()`` ends it.
                if func.attr in _CLOSERS:
                    kills.append(receiver.id)
                arg_names: List[str] = []
                for arg in call.args:
                    arg_names.extend(self._names_in(arg, live))
                for keyword in call.keywords:
                    arg_names.extend(self._names_in(keyword.value, live))
                return kills + arg_names
            if func.attr in _OS_RETIRERS and call.args:
                target = call.args[0]
                if isinstance(target, ast.Name) and target.id in live:
                    kills.append(target.id)
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id in live:
                    # ``os.replace(handle.name, path)`` commits ``handle``.
                    kills.append(target.value.id)
        # Passing a live resource to any call moves ownership.
        for arg in call.args:
            kills.extend(self._names_in(arg, live))
        for keyword in call.keywords:
            kills.extend(self._names_in(keyword.value, live))
        return kills

    @staticmethod
    def _store_escapes(element: Element, live: set) -> List[str]:
        """RHS names stored into attributes/subscripts/other locals."""
        if isinstance(element, ast.Assign):
            value = element.value
        elif isinstance(element, ast.AnnAssign) and element.value is not None:
            value = element.value
        else:
            return []
        if isinstance(value, ast.Call):
            return []  # handled (or born) via the call path
        return OpenResources._names_in(value, live)
