"""The whole-project call graph assembled from per-file summaries.

Rules collect ``(caller-qualname, [(callee-dotted-name, line), ...])``
edges per file inside the parallel per-file phase; the project phase
feeds them to :class:`CallGraph`, which answers the reachability
questions cross-file rules keep asking -- "is this function reachable
from a registered experiment, and through which chain of calls?".

Resolution stays deliberately conservative (only statically nameable
targets produce edges; see :meth:`repro.lint.context.FileContext.resolve`),
so reachability under-approximates: a function the graph cannot reach
may still run, but every witness chain the graph reports corresponds to
real call sites.  The determinism rule's experiment reachability runs on
this graph; any future project-phase rule gets the same machinery for
free.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["CallGraph", "Reachability"]


class Reachability:
    """BFS result: which nodes were reached, from where, and how."""

    def __init__(self) -> None:
        #: qual -> the caller it was first reached through (None = root).
        self.parent: Dict[str, Optional[str]] = {}
        #: qual -> the root label (e.g. experiment id) that reaches it.
        self.origin: Dict[str, str] = {}

    def __contains__(self, qual: str) -> bool:
        return qual in self.parent

    def __iter__(self):
        return iter(self.parent)

    def chain(self, qual: str) -> List[str]:
        """The witness call path root -> ... -> ``qual``."""
        links: List[str] = []
        cursor: Optional[str] = qual
        while cursor is not None:
            links.append(cursor)
            cursor = self.parent[cursor]
        links.reverse()
        return links


class CallGraph:
    """Directed call edges between fully qualified function names."""

    def __init__(self) -> None:
        self._callees: Dict[str, List[Tuple[str, int]]] = {}

    def add_function(
        self, qual: str, calls: Iterable[Sequence] = ()
    ) -> None:
        """Register ``qual`` with its ``(callee, line)`` call sites.

        Summaries survive a JSON round-trip through the analysis cache,
        so call sites arrive as two-element lists as often as tuples;
        both are accepted.
        """
        entry = self._callees.setdefault(qual, [])
        for callee, line in calls:
            entry.append((callee, line))

    def __contains__(self, qual: str) -> bool:
        return qual in self._callees

    def __len__(self) -> int:
        return len(self._callees)

    def callees_of(self, qual: str) -> List[Tuple[str, int]]:
        return list(self._callees.get(qual, ()))

    def callers_of(self, qual: str) -> List[Tuple[str, int]]:
        """Call sites targeting ``qual`` (reverse edges, computed lazily)."""
        callers: List[Tuple[str, int]] = []
        for caller, calls in self._callees.items():
            for callee, line in calls:
                if callee == qual:
                    callers.append((caller, line))
        return callers

    def reach(self, roots: Iterable[Tuple[str, str]]) -> Reachability:
        """Breadth-first reachability from ``(label, qual)`` roots.

        Only functions registered in the graph are traversed; edges to
        unknown names (stdlib, numpy, unresolvable targets) are dropped.
        Each reached function records one witness parent and the label
        of the first root that reached it.
        """
        result = Reachability()
        queue: deque = deque()
        for label, qual in roots:
            if qual in self._callees and qual not in result.parent:
                result.parent[qual] = None
                result.origin[qual] = label
                queue.append(qual)
        while queue:
            qual = queue.popleft()
            for callee, _line in self._callees[qual]:
                if callee in self._callees and callee not in result.parent:
                    result.parent[callee] = qual
                    result.origin[callee] = result.origin[qual]
                    queue.append(callee)
        return result
