"""Intraprocedural control-flow graphs over function bodies.

:func:`build_cfg` turns one ``FunctionDef`` into a graph of basic
blocks.  Each block holds a sequence of *elements*: ordinary statements,
the header statements of compound constructs (``if``/``while``/``for``/
``with``/``try`` appear as elements so transfer functions can see their
test/iter/context expressions evaluated at that point), and synthetic
:class:`WithExit` markers emitted where a ``with`` body ends -- the hook
that lets the held-locks analysis release a lock at the exact program
point the runtime does.

Modeling decisions (all biased toward *under*-reporting, matching the
package's "a miss means a missed finding, never a false one" stance):

* Exceptional edges exist only where the source is explicit about them:
  an ``except`` block is reachable from the start and the end of its
  ``try`` body, and a ``raise`` jumps to the innermost enclosing
  handlers (or, with none, to the function exit).  Arbitrary calls are
  not assumed to raise.
* ``finally`` bodies are *inlined* into every path that crosses them --
  the normal fall-through once, and again ahead of each ``return`` /
  ``break`` / ``continue`` / uncaught ``raise`` that jumps out through
  them.  Duplication keeps every path explicit, which is what the
  resource analysis needs.
* ``lock.acquire()`` / ``release()`` calls are ordinary statements; only
  ``with`` acquisitions get enter/exit structure.
* Nested ``def`` / ``class`` / ``lambda`` bodies are opaque: the binding
  is an element, the inner body is never walked (it runs later, if
  ever).

The entry block is empty; the exit block collects every path out of the
function (falling off the end, ``return``, uncaught ``raise``).
"""

from __future__ import annotations

import ast
import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

__all__ = ["Block", "CFG", "WithExit", "build_cfg", "walk_element"]


class WithExit:
    """Synthetic element marking the end of one ``with`` body."""

    __slots__ = ("node", "uid")

    def __init__(self, node: Union[ast.With, ast.AsyncWith], uid: int) -> None:
        self.node = node
        self.uid = uid

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WithExit(line={self.node.lineno})"


#: What a block holds: real statements plus synthetic markers.
Element = Union[ast.stmt, WithExit]


class Block:
    """One basic block: a straight-line element sequence plus edges."""

    __slots__ = ("id", "elements", "succs", "preds")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.elements: List[Element] = []
        self.succs: List[int] = []
        self.preds: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.id}, elements={len(self.elements)}, succs={self.succs})"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self._ids = itertools.count()
        self.entry = self.new_block().id
        self.exit = self.new_block().id

    def new_block(self) -> Block:
        block = Block(next(self._ids))
        self.blocks[block.id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        src_block, dst_block = self.blocks[src], self.blocks[dst]
        if dst not in src_block.succs:
            src_block.succs.append(dst)
            dst_block.preds.append(src)

    def reachable(self) -> FrozenSet[int]:
        """Block ids reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return frozenset(seen)


_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def walk_element(element: Element) -> Iterator[ast.AST]:
    """Yield the AST nodes an element *evaluates* at its program point.

    Compound headers yield only their header expressions (an ``if``'s
    test, a ``for``'s target and iter, a ``with``'s items); plain
    statements yield their whole subtree.  Nested function/class/lambda
    bodies are never entered -- they execute later, if at all.
    """
    roots: List[ast.AST]
    if isinstance(element, WithExit):
        return
    if isinstance(element, (ast.If, ast.While)):
        roots = [element.test]
    elif isinstance(element, (ast.For, ast.AsyncFor)):
        roots = [element.target, element.iter]
    elif isinstance(element, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in element.items] + [
            item.optional_vars
            for item in element.items
            if item.optional_vars is not None
        ]
    elif isinstance(element, (ast.Try, ast.Match)):
        roots = [element.subject] if isinstance(element, ast.Match) else []
    elif isinstance(element, _OPAQUE):
        return
    else:
        roots = [element]
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _OPAQUE):
                stack.append(child)


class _Builder:
    """Recursive-descent CFG construction with loop/try context stacks."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (continue-target block id, break-target block id, finally depth).
        self.loops: List[Tuple[int, int, int]] = []
        #: ``finally`` bodies enclosing the current emission point.
        self.finallies: List[List[ast.stmt]] = []
        #: Handler-entry block ids of enclosing ``try`` bodies.
        self.handlers: List[List[int]] = []
        self._with_uids = itertools.count()

    # ---- plumbing --------------------------------------------------

    def build(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> CFG:
        entry = self.cfg.blocks[self.cfg.entry]
        end = self._emit_body(func.body, entry)
        if end is not None:
            self.cfg.add_edge(end.id, self.cfg.exit)
        return self.cfg

    def _emit_body(
        self, stmts: List[ast.stmt], block: Optional[Block]
    ) -> Optional[Block]:
        """Emit a statement list; returns the open block, or None if
        every path jumped away."""
        for stmt in stmts:
            if block is None:
                # Dead code after a jump still gets blocks (rules may
                # want to see it) -- just no incoming edges.
                block = self.cfg.new_block()
            block = self._emit_stmt(stmt, block)
        return block

    def _join(self, ends: List[Optional[Block]]) -> Optional[Block]:
        """Merge branch ends into a fresh block.

        Always fresh: an end may be the branching block itself (an
        ``if`` without ``else``), and appending later statements to it
        would misorder them against the branch edges.
        """
        live = [end for end in ends if end is not None]
        if not live:
            return None
        join = self.cfg.new_block()
        for end in live:
            self.cfg.add_edge(end.id, join.id)
        return join

    def _inline_finallies(self, block: Block, upto: int = 0) -> Optional[Block]:
        """Copy pending ``finally`` bodies (innermost first) into the
        current path, down to stack depth ``upto``."""
        for body in reversed(self.finallies[upto:]):
            result = self._emit_body(body, block)
            if result is None:
                return None
            block = result
        return block

    # ---- statements ------------------------------------------------

    def _emit_stmt(self, stmt: ast.stmt, block: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, block)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, block)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._emit_with(stmt, block)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, block)
        if isinstance(stmt, ast.Match):
            return self._emit_match(stmt, block)
        if isinstance(stmt, ast.Return):
            block.elements.append(stmt)
            tail = self._inline_finallies(block)
            if tail is not None:
                self.cfg.add_edge(tail.id, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            block.elements.append(stmt)
            if self.handlers:
                for handler_id in self.handlers[-1]:
                    self.cfg.add_edge(block.id, handler_id)
            else:
                tail = self._inline_finallies(block)
                if tail is not None:
                    self.cfg.add_edge(tail.id, self.cfg.exit)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            block.elements.append(stmt)
            if self.loops:
                continue_id, break_id, depth = self.loops[-1]
                tail = self._inline_finallies(block, upto=depth)
                if tail is not None:
                    target = (
                        break_id if isinstance(stmt, ast.Break) else continue_id
                    )
                    self.cfg.add_edge(tail.id, target)
            return None
        block.elements.append(stmt)
        return block

    def _emit_if(self, stmt: ast.If, block: Block) -> Optional[Block]:
        block.elements.append(stmt)
        then_entry = self.cfg.new_block()
        self.cfg.add_edge(block.id, then_entry.id)
        then_end = self._emit_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(block.id, else_entry.id)
            else_end = self._emit_body(stmt.orelse, else_entry)
            return self._join([then_end, else_end])
        return self._join([then_end, block])

    def _emit_loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], block: Block
    ) -> Optional[Block]:
        header = self.cfg.new_block()
        self.cfg.add_edge(block.id, header.id)
        header.elements.append(stmt)
        after = self.cfg.new_block()
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(header.id, body_entry.id)
        self.loops.append((header.id, after.id, len(self.finallies)))
        try:
            body_end = self._emit_body(stmt.body, body_entry)
        finally:
            self.loops.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end.id, header.id)
        if not infinite:
            if stmt.orelse:
                else_entry = self.cfg.new_block()
                self.cfg.add_edge(header.id, else_entry.id)
                else_end = self._emit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    self.cfg.add_edge(else_end.id, after.id)
            else:
                self.cfg.add_edge(header.id, after.id)
        return after if after.preds else None

    def _emit_with(
        self, stmt: Union[ast.With, ast.AsyncWith], block: Block
    ) -> Optional[Block]:
        block.elements.append(stmt)
        end = self._emit_body(stmt.body, block)
        if end is None:
            return None
        end.elements.append(WithExit(stmt, next(self._with_uids)))
        return end

    def _emit_try(self, stmt: ast.Try, block: Block) -> Optional[Block]:
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(block.id, body_entry.id)
        # Handler entry blocks exist before the body is emitted so that
        # an explicit ``raise`` inside the body can target them.
        handler_entries = [self.cfg.new_block() for _ in stmt.handlers]
        if stmt.finalbody:
            self.finallies.append(stmt.finalbody)
        if handler_entries:
            self.handlers.append([entry.id for entry in handler_entries])
        try:
            body_end = self._emit_body(stmt.body, body_entry)
        finally:
            if handler_entries:
                self.handlers.pop()
        # An exception may surface at the first or the last statement of
        # the body; edges from both bound the states a handler can see.
        for entry in handler_entries:
            self.cfg.add_edge(body_entry.id, entry.id)
            if body_end is not None and body_end is not body_entry:
                self.cfg.add_edge(body_end.id, entry.id)
        handler_ends: List[Optional[Block]] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            entry.elements.append(handler)
            handler_ends.append(self._emit_body(handler.body, entry))
        normal_end = body_end
        if stmt.orelse and body_end is not None:
            # A fresh block: the handler edges out of ``body_end`` model
            # "exception at the end of the try body", and the else body
            # must stay on the no-exception side of them.
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(body_end.id, else_entry.id)
            normal_end = self._emit_body(stmt.orelse, else_entry)
        if stmt.finalbody:
            self.finallies.pop()
            joined = self._join([normal_end] + handler_ends)
            if joined is None:
                return None
            return self._emit_body(stmt.finalbody, joined)
        return self._join([normal_end] + handler_ends)

    def _emit_match(self, stmt: ast.Match, block: Block) -> Optional[Block]:
        block.elements.append(stmt)
        ends: List[Optional[Block]] = [block]  # no case may match
        for case in stmt.cases:
            case_entry = self.cfg.new_block()
            self.cfg.add_edge(block.id, case_entry.id)
            ends.append(self._emit_body(case.body, case_entry))
        return self._join(ends)


def build_cfg(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> CFG:
    """Build the CFG of one function definition's body."""
    return _Builder().build(func)
