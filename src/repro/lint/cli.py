"""``python -m repro.lint`` / ``repro-lint``: the lint CLI.

Usage::

    repro-lint src/                       # all rules, human output
    repro-lint src/ --format json         # obs-schema JSON lines
    repro-lint src/ --format sarif        # SARIF 2.1.0 to stdout
    repro-lint src/ --sarif lint.sarif    # ... or to a file, alongside
    repro-lint src/ --rules no-print,determinism
    repro-lint src/ --jobs 8              # parallel per-file phase
    repro-lint src/ --cache               # incremental (.lint-cache/)
    repro-lint src/ --write-baseline      # grandfather current findings
    repro-lint src/ --prune-baseline      # drop stale baseline entries
    repro-lint --list-rules               # catalog with one-liners

Exit codes: ``0`` clean (or fully baselined/suppressed), ``1`` findings
*or stale baseline entries* (a fixed finding must take its exemption
with it), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline, write_baseline
from .cache import AnalysisCache
from .engine import lint_paths
from .output import render_human, render_jsonl
from .registry import all_rules
from .sarif import render_sarif

__all__ = ["main", "build_parser"]

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis enforcing the reproduction's determinism, "
            "layering and fork-safety invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help=(
            "output format: human one-liners, obs-schema JSON lines, "
            "or a SARIF 2.1.0 log"
        ),
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-file phase (default: 1)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=".lint-cache",
        default=None,
        metavar="DIR",
        help=(
            "incremental mode: reuse per-file results for unchanged "
            "files from DIR (default: .lint-cache)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file without entries that no longer "
            "match any finding"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_baseline(arg: Optional[str]) -> Optional[Path]:
    if arg is not None:
        return Path(arg)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id:18s} {rule.title}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [part.strip() for part in args.rules.split(",") if part.strip()]
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    baseline_path = _resolve_baseline(args.baseline)
    cache = AnalysisCache(Path(args.cache)) if args.cache else None
    if args.write_baseline:
        target = baseline_path or Path(args.baseline or DEFAULT_BASELINE)
        result = lint_paths(args.paths, rules=rules, jobs=args.jobs, cache=cache)
        count = write_baseline(result.findings, target)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {target}")
        return 0

    baseline = None
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load baseline {baseline_path}: {exc}")
    elif args.prune_baseline:
        parser.error("--prune-baseline requires a baseline file")

    try:
        result = lint_paths(
            args.paths,
            rules=rules,
            jobs=args.jobs,
            baseline=baseline,
            cache=cache,
        )
    except KeyError as exc:
        parser.error(str(exc))

    if args.prune_baseline and result.unused_baseline:
        stale_keys = {entry.key() for entry in result.unused_baseline}
        pruned = Baseline(
            entry for entry in baseline.entries if entry.key() not in stale_keys
        )
        pruned.write(baseline_path)
        print(
            f"pruned {len(stale_keys)} stale entr"
            f"{'y' if len(stale_keys) == 1 else 'ies'} from {baseline_path}"
        )
        result.unused_baseline = []

    rendered = (
        render_jsonl(result) if args.format == "json" else render_human(result)
    )
    if args.format == "sarif":
        rendered = render_sarif(result)
    if args.sarif:
        Path(args.sarif).write_text(render_sarif(result), encoding="utf-8")
    sys.stdout.write(rendered)
    if result.ok and result.unused_baseline:
        # A stale exemption is a failure: the finding it excused is
        # gone, so the entry must go too (or be --prune-baseline'd).
        sys.stderr.write(
            "repro-lint: stale baseline entries (run --prune-baseline "
            "or delete them)\n"
        )
        return 1
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
