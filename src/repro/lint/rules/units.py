"""``units-hygiene``: unit conversions live in ``core/units.py``.

The paper mixes Gb/s, GB/s, TFLOPs and TB/s freely (Table I), and one
stray factor of eight or thousand silently changes every conclusion --
which is exactly why :mod:`repro.core.units` exists.  Two patterns are
flagged outside that module:

* magic conversion literals (``1e9``, ``1e12``, ``1024**3``...)
  multiplying or dividing a quantity -- use the named constants
  (``GB``, ``TERA``, ``GIB``) so the unit is stated at the use site;
* names carrying non-base unit suffixes (``_gb``, ``_mb``, ``_ms``,
  ``_us``...) -- quantities are stored in base units (bytes, seconds,
  FLOPs: ``_bytes``, ``_s``, ``_flops``) and converted at the
  presentation boundary only.  (``_hours`` is exempt: the scheduler's
  native domain unit.)
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["UnitsHygieneRule"]

#: The module that owns conversions -- exempt by definition.
_UNITS_MODULE = "repro/core/units.py"

#: Conversion literals worth naming: decimal giga and up, binary mebi
#: and up.  (1e3/1e6 are deliberately not flagged: they appear in
#: innocent ms/us display formatting far more often than in unit bugs.)
_MAGIC = {
    1e9: "GB (or GIGA)",
    1e12: "TB (or TERA)",
    1e15: "units' PB multiplier",
    float(1024**2): "MIB",
    float(1024**3): "GIB",
    float(1024**4): "TIB",
}

#: Non-base unit suffixes; values name the base-unit convention.
_BAD_SUFFIXES = {
    "_kb": "_bytes", "_mb": "_bytes", "_gb": "_bytes", "_tb": "_bytes",
    "_kib": "_bytes", "_mib": "_bytes", "_gib": "_bytes", "_tib": "_bytes",
    "_ms": "_s", "_us": "_s", "_ns": "_s",
}


def _const_value(node: ast.expr):
    """Fold constant ``1024 * 1024`` / ``1024**3`` style products."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Pow)):
        left = _const_value(node.left)
        right = _const_value(node.right)
        if left is not None and right is not None:
            return left * right if isinstance(node.op, ast.Mult) else left**right
    return None


def _magic_name(node: ast.expr):
    value = _const_value(node)
    if value is None:
        return None
    name = _MAGIC.get(value)
    return None if name is None else (value, name)


@register
class UnitsHygieneRule(Rule):
    id = "units-hygiene"
    title = "magic unit-conversion literals / non-base-unit names"
    rationale = (
        "the analytical model's conclusions hinge on unit conversions "
        "(the exact 21x of Eq. 3 depends on 25 Gb/s == 3.125 GB/s); a "
        "bare 1e9 states neither bytes-vs-FLOPs nor decimal-vs-binary, "
        "and a _gb-suffixed name invites double conversion."
    )
    suggestion = (
        "import the named constant from repro.core.units (GB, TERA, "
        "GIB...) or use its constructors/formatters; store quantities "
        "in base units with _bytes/_s/_flops names and convert at the "
        "boundary."
    )

    def visit_BinOp(
        self, ctx: FileContext, node: ast.BinOp
    ) -> Iterable[Finding]:
        if ctx.pkg_path == _UNITS_MODULE:
            return ()
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return ()
        if _const_value(node) is not None:
            # A fully-constant product (1024 * 1024 * 1024) is flagged
            # once, where it meets a non-constant quantity -- not again
            # for each sub-product.
            return ()
        findings = []
        for operand in (node.left, node.right):
            magic = _magic_name(operand)
            if magic is not None:
                value, name = magic
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"magic conversion literal {value!r}; "
                        f"use repro.core.units.{name} so the unit is "
                        "stated at the use site",
                    )
                )
        return findings

    def _check_name(
        self, ctx: FileContext, node: ast.AST, name: str
    ) -> Iterable[Finding]:
        lowered = name.lower()
        for suffix, base in _BAD_SUFFIXES.items():
            if lowered.endswith(suffix):
                return (
                    self.finding(
                        ctx,
                        node,
                        f"name {name!r} carries a non-base unit suffix; "
                        f"store base units and name it with {base!r}",
                        context=name,
                    ),
                )
        return ()

    def visit_FunctionDef(
        self, ctx: FileContext, node: ast.FunctionDef
    ) -> Iterable[Finding]:
        if ctx.pkg_path == _UNITS_MODULE:
            return ()
        findings = []
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            findings.extend(self._check_name(ctx, arg, arg.arg))
        return findings

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(
        self, ctx: FileContext, node: ast.Assign
    ) -> Iterable[Finding]:
        if ctx.pkg_path == _UNITS_MODULE:
            return ()
        findings = []
        for target in node.targets:
            if isinstance(target, ast.Name):
                findings.extend(self._check_name(ctx, target, target.id))
        return findings

    def visit_AnnAssign(
        self, ctx: FileContext, node: ast.AnnAssign
    ) -> Iterable[Finding]:
        if ctx.pkg_path == _UNITS_MODULE:
            return ()
        if isinstance(node.target, ast.Name):
            return self._check_name(ctx, node.target, node.target.id)
        return ()
