"""Built-in rules.  Importing this package registers all of them."""

from . import (  # noqa: F401
    api_hygiene,
    determinism,
    exception_contract,
    fork_safety,
    hot_path,
    layering,
    lock_discipline,
    no_print,
    resource_safety,
    units,
)
