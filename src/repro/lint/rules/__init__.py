"""Built-in rules.  Importing this package registers all of them."""

from . import (  # noqa: F401
    api_hygiene,
    determinism,
    fork_safety,
    layering,
    no_print,
    units,
)
