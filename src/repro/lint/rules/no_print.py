"""``no-print``: stdout discipline.

Migrated from the retired ``tools/check_no_print.py``.  Everything except the CLIs and the report renderer must go
through :mod:`repro.obs` sinks, so ``-q`` silences it, ``-v`` reveals
it, and ``--log-json`` captures it -- and so the report on stdout stays
byte-identical between warm and cold cache runs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["NoPrintRule", "ALLOWED"]

#: Package-relative paths allowed to print: the CLIs own stdout, and
#: the report renderer produces user-facing text.
ALLOWED = frozenset(
    {
        "repro/analysis/cli.py",
        "repro/analysis/report.py",
        "repro/lint/cli.py",
    }
)


@register
class NoPrintRule(Rule):
    id = "no-print"
    title = "bare print() outside the CLIs and the report renderer"
    rationale = (
        "stdout is reserved for the rendered report, which must stay "
        "byte-identical between warm- and cold-cache runs; everything "
        "else goes through repro.obs sinks so -q/-v/--log-json govern it."
    )
    suggestion = (
        "route the message through repro.obs (get_obs().info/debug/...), "
        "or, in genuinely user-facing CLI code, add the file to "
        "repro.lint.rules.no_print.ALLOWED."
    )

    def visit_Call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterable[Finding]:
        if ctx.pkg_path in ALLOWED:
            return ()
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            return (
                self.finding(
                    ctx,
                    node,
                    "bare print() outside the CLI/report renderer -- "
                    "route it through repro.obs sinks instead",
                ),
            )
        return ()


def find_prints(source: str, filename: str = "<string>"):
    """``(line, context)`` pairs -- compatibility API for the old tool."""
    tree = ast.parse(source, filename=filename)
    hits = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            hits.append((node.lineno, ast.unparse(node)[:80]))
    return hits
