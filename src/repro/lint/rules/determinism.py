"""``determinism``: experiments must be pure functions of their inputs.

The result cache (:mod:`repro.runtime.cache`) serves experiment results
by a fingerprint over trace config, hardware and model knobs.  Any
hidden input -- module-state RNGs, wall-clock reads, environment
variables -- silently poisons that fingerprint: two runs with the same
key would disagree, and warm reports would stop being byte-identical.

The rule collects call edges per file and walks the shared project
call graph (:mod:`repro.lint.callgraph`), flagging every
non-deterministic *sin* (unseeded ``random`` /
``np.random`` module state, ``time.time`` / ``datetime.now``,
``os.environ`` reads, ``uuid``/``secrets``) that is reachable from an
experiment registered in a module-level ``EXPERIMENTS`` dict.  Sins at
module top level execute at import time and poison every importer, so
they are flagged unconditionally.

Resolution is deliberately conservative: calls whose target cannot be
statically named (methods on call results, locals, subscripts) simply
add no call-graph edge.  A miss means a missed finding, never a false
one.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..callgraph import CallGraph
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["DeterminismRule"]

#: Exact dotted names that read hidden process state.
_EXACT_SINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.getenv",
        "os.environ.get",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``random.<fn>`` module-state functions (the module-level Mersenne
#: Twister; even seeded it is shared mutable state across the suite).
_RANDOM_MODULE_FNS = frozenset(
    {
        "seed", "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "betavariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are *not* module-state draws:
#: constructing one of these (seeded) is the sanctioned idiom.
_NP_RANDOM_OK = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "RandomState",
        "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
    }
)

#: Constructors that are only deterministic when given an explicit seed.
_NEEDS_SEED = frozenset({"numpy.random.default_rng", "random.Random"})

_STATE_KEY = "determinism"


def _classify_sin(resolved: str, node: ast.Call) -> Optional[str]:
    """A human-readable description of the sin, or None."""
    if resolved in _EXACT_SINS:
        return f"{resolved}() reads hidden process state"
    if resolved.startswith("secrets."):
        return f"{resolved}() is entropy by design"
    parts = resolved.split(".")
    if parts[0] == "random" and len(parts) == 2:
        if parts[1] in _RANDOM_MODULE_FNS:
            return (
                f"{resolved}() uses the shared module-state RNG; "
                "thread a seeded random.Random through instead"
            )
    if resolved.startswith("numpy.random.") and len(parts) == 3:
        if parts[2] not in _NP_RANDOM_OK:
            return (
                f"{resolved}() draws from numpy's module-state RNG; "
                "thread a seeded np.random.default_rng through instead"
            )
    if resolved in _NEEDS_SEED and not node.args and not node.keywords:
        return f"{resolved}() without a seed is entropy-initialized"
    return None


def _state(ctx: FileContext) -> Dict[str, Any]:
    return ctx.state.setdefault(
        _STATE_KEY,
        {"functions": {}, "roots": [], "module_name": ctx.module},
    )


def _function_entry(ctx: FileContext) -> Dict[str, List]:
    state = _state(ctx)
    qual = ctx.qualname()
    return state["functions"].setdefault(qual, {"calls": [], "sins": []})


@register
class DeterminismRule(Rule):
    id = "determinism"
    title = "hidden-state reads reachable from registered experiments"
    rationale = (
        "cached experiment results are served by a fingerprint over "
        "declared inputs; an unseeded RNG, wall-clock read or "
        "environment read reachable from a registered experiment makes "
        "results depend on state the fingerprint cannot see, so warm "
        "cache hits silently return answers computed under different "
        "conditions."
    )
    suggestion = (
        "thread a seeded generator (np.random.default_rng(seed)) or an "
        "explicit parameter through the call chain; fold environment "
        "reads into the fingerprinted config.  If the value provably "
        "never reaches the result (telemetry, provenance), suppress "
        "with # repro: ignore[determinism] and say why."
    )

    # ---- collection (single pass, per file) -----------------------

    def visit_Call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterable[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return ()
        sin = _classify_sin(resolved, node)
        in_function = ctx.in_function()
        if sin is None:
            if in_function:
                _function_entry(ctx)["calls"].append((resolved, node.lineno))
            return ()
        if not in_function:
            # Import-time sin: poisons every importer, no reachability
            # question to ask.
            return (
                self.finding(
                    ctx,
                    node,
                    f"{sin} at module top level (runs at import time)",
                ),
            )
        entry = _function_entry(ctx)
        entry["sins"].append(
            (sin, node.lineno, node.col_offset, ctx.snippet(node))
        )
        return ()

    def visit_Subscript(
        self, ctx: FileContext, node: ast.Subscript
    ) -> Iterable[Finding]:
        resolved = ctx.resolve(node.value)
        if resolved != "os.environ":
            return ()
        sin = "os.environ[...] reads hidden process state"
        if not ctx.in_function():
            return (
                self.finding(
                    ctx, node, f"{sin} at module top level (runs at import time)"
                ),
            )
        _function_entry(ctx)["sins"].append(
            (sin, node.lineno, node.col_offset, ctx.snippet(node))
        )
        return ()

    def visit_Assign(
        self, ctx: FileContext, node: ast.Assign
    ) -> Iterable[Finding]:
        # Roots: a module-level ``EXPERIMENTS = {"id": runner, ...}``.
        return self._collect_roots(ctx, node.targets, node.value)

    def visit_AnnAssign(
        self, ctx: FileContext, node: ast.AnnAssign
    ) -> Iterable[Finding]:
        # The real registry annotates: ``EXPERIMENTS: Dict[...] = {...}``.
        return self._collect_roots(ctx, [node.target], node.value)

    def _collect_roots(
        self,
        ctx: FileContext,
        targets: List[ast.expr],
        value: Optional[ast.expr],
    ) -> Iterable[Finding]:
        if ctx.in_function():
            return ()
        if not any(
            isinstance(target, ast.Name) and target.id == "EXPERIMENTS"
            for target in targets
        ):
            return ()
        if not isinstance(value, ast.Dict):
            return ()
        state = _state(ctx)
        for key, runner in zip(value.keys, value.values):
            experiment_id = (
                key.value
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
                else "?"
            )
            resolved = ctx.resolve(runner)
            if resolved is not None:
                state["roots"].append((experiment_id, resolved))
        return ()

    # ---- project phase --------------------------------------------

    def summarize(self, ctx: FileContext) -> Optional[Any]:
        state = ctx.state.get(_STATE_KEY)
        if state is None:
            return None
        # Honor inline suppressions here: the engine filters per-file
        # findings, but project findings are assembled later from these
        # summaries, so suppressed sin lines must drop out now.
        functions = {}
        for qual, entry in state["functions"].items():
            sins = [
                sin
                for sin in entry["sins"]
                if not ctx.suppressed(self.id, sin[1])
            ]
            if sins or entry["calls"]:
                functions[qual] = {"calls": entry["calls"], "sins": sins}
        if not functions and not state["roots"]:
            return None
        return {
            "path": str(ctx.path),
            "pkg_path": ctx.pkg_path,
            "functions": functions,
            "roots": state["roots"],
        }

    def check_project(self, summaries: List[Any]) -> Iterable[Finding]:
        functions: Dict[str, Dict] = {}
        location: Dict[str, Tuple[str, str]] = {}
        graph = CallGraph()
        roots: List[Tuple[str, str]] = []
        for summary in summaries:
            for qual, entry in summary["functions"].items():
                functions[qual] = entry
                location[qual] = (summary["path"], summary["pkg_path"])
                graph.add_function(qual, entry["calls"])
            for experiment_id, qual in summary["roots"]:
                roots.append((experiment_id, qual))

        # BFS from every registered experiment, one witness call path
        # per reached function, on the shared project call graph.
        reached = graph.reach(roots)

        findings: List[Finding] = []
        for qual in reached:
            for sin, line, col, snippet in functions[qual]["sins"]:
                path, pkg_path = location[qual]
                findings.append(
                    Finding(
                        rule=self.id,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"{sin}; reachable from registered experiment "
                            f"{reached.origin[qual]!r} via "
                            f"{' -> '.join(reached.chain(qual))}"
                        ),
                        context=snippet,
                        pkg_path=pkg_path,
                    )
                )
        return findings
