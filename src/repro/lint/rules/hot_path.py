"""``hot-path``: keep the columnar hot modules columnar.

The repo's performance story (PR 7/8) is that population construction,
schedule simulation and trace decoding are vectorized end to end --
NumPy kernels over contiguous columns, no per-row Python.  That story
erodes one convenient ``.tolist()`` at a time, so this rule patrols a
registry of *hot modules* (:data:`HOT_MODULES`) for the regressions the
bench gate only catches after they ship:

* ``.tolist()`` -- materializes a Python list per element; hot code
  returns arrays and lets the presentation layer convert;
* ``np.append`` / ``np.concatenate`` / ``np.vstack`` / ``np.hstack`` /
  ``np.insert`` / ``np.delete`` *inside a loop* -- each call copies the
  whole array, turning a linear pass quadratic; preallocate or collect
  then concatenate once;
* ``dtype=object`` -- an object array is a pointer table, one heap
  object per element; use fixed-width or unicode dtypes;
* ``for i in range(len(x)):`` -- the canonical per-row loop; index
  vectorized or iterate the sequence directly.

Modules outside the registry are untouched -- presentation and test
code may be as leisurely as it likes.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["HotPathRule", "HOT_MODULES"]

#: Module prefixes held to columnar discipline.  A module is hot when it
#: equals an entry or sits beneath it (``repro.core.population`` covers
#: ``repro.core.population.views`` should it ever split).
HOT_MODULES: Tuple[str, ...] = (
    "repro.core.population",
    "repro.sched.engine",
    "repro.trace.columnar",
)

#: NumPy calls that copy the whole array per invocation.
_GROWTH_CALLS = frozenset(
    {
        "numpy.append",
        "numpy.concatenate",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.insert",
        "numpy.delete",
    }
)

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def is_hot_module(module: Optional[str]) -> bool:
    if not module:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in HOT_MODULES
    )


def _is_range_len(node: ast.For) -> bool:
    """``for ... in range(len(x)):`` (single-argument range only)."""
    call = node.iter
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and len(call.args) == 1
    ):
        return False
    inner = call.args[0]
    return (
        isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Name)
        and inner.func.id == "len"
    )


@register
class HotPathRule(Rule):
    id = "hot-path"
    title = "per-row Python in modules the bench gate holds columnar"
    rationale = (
        "population construction, schedule simulation and trace "
        "decoding are the measured hot loops; a .tolist(), an object "
        "dtype or an np.append-in-loop reintroduces per-row Python "
        "(or quadratic copying) that the bench gate only flags after "
        "the regression lands."
    )
    suggestion = (
        "stay in NumPy: preallocate and fill, collect then concatenate "
        "once, index with arrays instead of range(len(...)).  Where a "
        "Python-object boundary is the point (a figure API returning "
        "lists), suppress with # repro: ignore[hot-path] and say so."
    )

    def finish_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not is_hot_module(ctx.module):
            return ()
        findings: List[Finding] = []
        self._walk(ctx, ctx.tree, False, findings)
        return findings

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        in_loop: bool,
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(
                child, _LOOPS + _COMPREHENSIONS
            )
            if isinstance(child, ast.For) and _is_range_len(child):
                findings.append(
                    self.finding(
                        ctx,
                        child,
                        "per-row `for ... in range(len(...))` loop in a "
                        "hot module; index vectorized or iterate the "
                        "sequence directly",
                    )
                )
            if isinstance(child, ast.Call):
                self._check_call(ctx, child, in_loop, findings)
            self._walk(ctx, child, child_in_loop, findings)

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        in_loop: bool,
        findings: List[Finding],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "tolist" and not (
            call.args or call.keywords
        ):
            findings.append(
                self.finding(
                    ctx,
                    call,
                    ".tolist() materializes one Python object per "
                    "element in a hot module; return the array and "
                    "convert at the presentation boundary",
                )
            )
        resolved = ctx.resolve(func)
        if resolved in _GROWTH_CALLS and in_loop:
            short = resolved.replace("numpy.", "np.")
            findings.append(
                self.finding(
                    ctx,
                    call,
                    f"{short}() inside a loop copies the whole array "
                    "every iteration (quadratic); collect parts and "
                    "concatenate once, or preallocate",
                )
            )
        for keyword in call.keywords:
            if (
                keyword.arg == "dtype"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "object"
            ):
                findings.append(
                    self.finding(
                        ctx,
                        keyword.value,
                        "dtype=object builds a pointer table with one "
                        "heap object per element; use a fixed-width or "
                        "unicode dtype",
                    )
                )
