"""``fork-safety``: state that lies across the suite's fork boundary.

The suite executor (:mod:`repro.runtime.executor`) forks worker
processes.  Three patterns silently misbehave under fork:

* a function rebinding a module-level name (``global X; X = ...``) --
  each worker mutates its own copy; the parent never sees it, and
  pre-fork state leaks into every worker;
* a function mutating a module-level mutable container (``CACHE[k] =
  ...``, ``REGISTRY.append(...)``) -- same copy-on-write split, plus a
  torn view if the parent mutates after forking;
* module-level ``open(...)`` / ``threading.Lock()`` -- the handle or
  lock is duplicated into every worker: shared file offsets corrupt
  output, and a lock held at fork time deadlocks the child.

Intentional per-process caches are fine -- and common; suppress them
with ``# repro: ignore[fork-safety]`` and a word on why.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["ForkSafetyRule"]

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
        "move_to_end", "appendleft", "extendleft", "popleft",
    }
)

_LOCK_TYPES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier"}
)


def _is_lock_call(ctx: FileContext, node: ast.Call) -> bool:
    parts = FileContext.dotted(node.func)
    if parts is None:
        return False
    if parts[-1] not in _LOCK_TYPES:
        return False
    head = ctx.imports.get(parts[0], parts[0]) if len(parts) > 1 else ""
    return head in ("threading", "multiprocessing") or len(parts) == 1 and parts[0] in _LOCK_TYPES


@register
class ForkSafetyRule(Rule):
    id = "fork-safety"
    title = "module state mutated, or handles/locks captured, across fork"
    rationale = (
        "suite experiments run in forked worker processes; module-level "
        "state mutated inside a function splits copy-on-write (workers "
        "and parent silently diverge), and file handles or locks created "
        "at import time are duplicated into every worker, corrupting "
        "offsets or deadlocking children."
    )
    suggestion = (
        "pass state explicitly, keep it on instances created after the "
        "fork, or open files inside the function that uses them.  For "
        "an intentional per-process memo, suppress the line with "
        "# repro: ignore[fork-safety] and say why it is fork-correct."
    )

    def visit_Global(
        self, ctx: FileContext, node: ast.Global
    ) -> Iterable[Finding]:
        findings = []
        for name in node.names:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"function rebinds module-level {name!r}; forked "
                    "suite workers each mutate a private copy the "
                    "parent never sees",
                    context=f"global {name}",
                )
            )
        return findings

    def visit_Call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterable[Finding]:
        if not ctx.in_function():
            # Import-time capture: file handles and locks baked into
            # module state get duplicated into every forked worker.
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                return (
                    self.finding(
                        ctx,
                        node,
                        "file handle opened at module level is shared "
                        "(offset and all) with every forked worker",
                    ),
                )
            if _is_lock_call(ctx, node):
                return (
                    self.finding(
                        ctx,
                        node,
                        "synchronization primitive created at module "
                        "level is duplicated into forked workers; one "
                        "held at fork time deadlocks the child",
                    ),
                )
            return ()
        if not isinstance(node.func, ast.Attribute):
            return ()
        if node.func.attr not in _MUTATORS:
            return ()
        receiver = node.func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ctx.mutable_globals
        ):
            return (
                self.finding(
                    ctx,
                    node,
                    f"in-place mutation of module-level {receiver.id!r} "
                    "inside a function; forked workers and the parent "
                    "silently diverge",
                ),
            )
        return ()

    def _subscript_mutation(
        self, ctx: FileContext, target: ast.expr
    ) -> Iterable[Finding]:
        if not isinstance(target, ast.Subscript):
            return ()
        receiver = target.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ctx.mutable_globals
        ):
            return (
                self.finding(
                    ctx,
                    target,
                    f"item assignment into module-level {receiver.id!r} "
                    "inside a function; forked workers and the parent "
                    "silently diverge",
                ),
            )
        return ()

    def visit_Assign(
        self, ctx: FileContext, node: ast.Assign
    ) -> Iterable[Finding]:
        if not ctx.in_function():
            return ()
        findings = []
        for target in node.targets:
            findings.extend(self._subscript_mutation(ctx, target))
        return findings

    def visit_AugAssign(
        self, ctx: FileContext, node: ast.AugAssign
    ) -> Iterable[Finding]:
        if not ctx.in_function():
            return ()
        return self._subscript_mutation(ctx, node.target)

    def visit_Delete(
        self, ctx: FileContext, node: ast.Delete
    ) -> Iterable[Finding]:
        if not ctx.in_function():
            return ()
        findings = []
        for target in node.targets:
            findings.extend(self._subscript_mutation(ctx, target))
        return findings
