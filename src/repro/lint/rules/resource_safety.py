"""``resource-safety``: every handle closed, every tmp file committed.

The columnar store's durability contract is a path property: the
``.tmp`` sibling a shard is written through must reach ``os.replace``
(commit) or ``unlink`` (abort) on *every* control-flow path, or a crash
window leaves a torn write behind.  Same shape for plain handles: an
``open()`` / ``mmap.mmap()`` / ``HTTPConnection()`` bound to a local
must reach ``close()`` (or context-manager exit) however the function
leaves.  Single-pass matchers cannot see "on every path"; this rule
runs the open-resources dataflow (:class:`repro.lint.dataflow.OpenResources`)
over each function's CFG and flags any resource still live in the exit
block's in-state -- i.e. leaked on at least one path.

Tracked births (all must be bound to a plain local to be tracked):

* ``open(...)``, ``mmap.mmap(...)``, ``http.client.HTTPConnection(...)``,
  ``socket.socket(...)`` -- kind *handle*;
* ``path.with_name(.. ".tmp" ..)`` / ``path.with_suffix(".tmp")`` and
  ``tempfile.NamedTemporaryFile(..., delete=False)`` -- kind *tmpfile*,
  retired only by ``os.replace``/``os.rename``/``unlink`` (closing a
  tmp file does not commit it).

Escapes (returning, yielding, storing into an attribute, passing to a
call) retire a resource: ownership left the function, and a missed leak
is better than a false one.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..cfg import build_cfg
from ..context import FileContext
from ..dataflow import OpenResources, run_forward
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["ResourceSafetyRule"]

#: Dotted call targets that open a plain handle.
_HANDLE_OPENERS = {
    "open": "open(...)",
    "mmap.mmap": "mmap.mmap(...)",
    "http.client.HTTPConnection": "HTTPConnection(...)",
    "http.client.HTTPSConnection": "HTTPSConnection(...)",
    "socket.socket": "socket.socket(...)",
    "gzip.open": "gzip.open(...)",
    "bz2.open": "bz2.open(...)",
    "lzma.open": "lzma.open(...)",
    "io.open": "io.open(...)",
    "zipfile.ZipFile": "ZipFile(...)",
    "tarfile.open": "tarfile.open(...)",
}

_TMP_MAKERS = frozenset({"with_name", "with_suffix"})


def _string_constants(node: ast.AST) -> Iterable[str]:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            yield inner.value


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


@register
class ResourceSafetyRule(Rule):
    id = "resource-safety"
    title = "handles/tmp files that miss close or os.replace on some path"
    rationale = (
        "the columnar store and result cache stay crash-consistent only "
        "because every .tmp write either commits via os.replace or is "
        "unlinked; a path that skips both leaves a torn file the next "
        "reader trusts.  Plain handles leaked on an early return pin "
        "file descriptors and mmaps for the process lifetime."
    )
    suggestion = (
        "use a `with` block, or make every path (including each except "
        "arm) reach close()/os.replace()/unlink().  If ownership really "
        "does transfer, return or store the handle -- the rule already "
        "treats escapes as hand-offs."
    )

    def finish_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(ctx, node))
        return findings

    def _classify(
        self, ctx: FileContext, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """``(kind, label)`` when ``call`` births a tracked resource."""
        resolved = ctx.resolve(call.func)
        if resolved is None and isinstance(call.func, ast.Name):
            resolved = call.func.id  # builtins resolve to themselves
        if resolved in _HANDLE_OPENERS:
            return ("handle", _HANDLE_OPENERS[resolved])
        if resolved == "tempfile.NamedTemporaryFile":
            delete = _keyword(call, "delete")
            if isinstance(delete, ast.Constant) and delete.value is False:
                return ("tmpfile", "NamedTemporaryFile(delete=False)")
            return None  # delete=True cleans up after itself
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _TMP_MAKERS
            and any(".tmp" in text for text in _string_constants(call))
        ):
            return ("tmpfile", f"{call.func.attr}(... '.tmp')")
        return None

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterable[Finding]:
        cfg = build_cfg(func)
        analysis = OpenResources(lambda call: self._classify(ctx, call))
        leaked = run_forward(cfg, analysis).at_exit()
        findings: List[Finding] = []
        for resource in sorted(leaked, key=lambda r: (r.line, r.name)):
            if resource.kind == "tmpfile":
                message = (
                    f"tmp file {resource.name!r} from {resource.what} is "
                    "neither committed via os.replace nor unlinked on "
                    "every path out of this function; a crash window "
                    "leaves a torn write behind"
                )
            else:
                message = (
                    f"{resource.what} bound to {resource.name!r} does not "
                    "reach close() (or a with block) on every path out "
                    "of this function"
                )
            findings.append(
                Finding(
                    rule=self.id,
                    path=str(ctx.path),
                    line=resource.line,
                    col=0,
                    message=message,
                    context=f"{resource.name} = {resource.what}",
                    pkg_path=ctx.pkg_path,
                )
            )
        return findings
