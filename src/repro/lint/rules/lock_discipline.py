"""``lock-discipline``: attributes guarded somewhere, guarded everywhere.

The serve layer's correctness argument is lock discipline: shard
statistics mutate only under ``with shard.lock:``, the snapshot cache
only under ``with self._snapshot_lock:``.  That argument is invisible to
a single-pass matcher -- whether a ``self.attr`` access is guarded
depends on which ``with`` bodies *flow* into it -- so this rule runs the
held-locks dataflow (:class:`repro.lint.dataflow.HeldLocks`) over each
method's CFG and cross-references accesses across the whole class:

1. collect every attribute access ``R.attr`` (receiver ``R`` a dotted
   path: ``self``, ``shard``, ``self._fleet``) with the set of locks
   held at that program point;
2. an attribute is *disciplined* when some access runs under a lock on
   the same receiver (``with shard.lock:`` guards ``shard.*``) and the
   attribute is written outside ``__init__`` somewhere in the class;
3. every unguarded access (read or write) to a disciplined attribute,
   outside ``__init__``/``__new__``/``__del__``, is a finding -- a
   static race candidate.

Deliberate unguarded reads exist (monotone counters, optimistic
snapshot fast paths); they are exactly the cases that deserve an inline
``# repro: ignore[lock-discipline]`` with the one-line proof of why the
race is benign.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Set, Tuple

from ..cfg import WithExit, build_cfg, walk_element
from ..context import FileContext
from ..dataflow import HeldLocks, dotted_path, run_forward
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["LockDisciplineRule"]

#: Constructors whose result is a synchronization primitive.
_LOCK_TYPES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Methods where unguarded access is construction, not a race.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__del__", "__post_init__"})


class _Access(NamedTuple):
    receiver: str
    attr: str
    held: FrozenSet[str]
    line: int
    col: int
    method: str
    is_write: bool
    snippet: str


def _is_lock_constructor(ctx: FileContext, value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    parts = FileContext.dotted(value.func)
    return parts is not None and parts[-1] in _LOCK_TYPES


def _methods_of(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    title = "attributes guarded by a lock in one method, raced in another"
    rationale = (
        "the serve shards, the query cache and the obs metrics are "
        "mutated by concurrent threads; an attribute written under "
        "`with self.lock:` in one method and read or written without "
        "it elsewhere is a data race the tests only catch under "
        "scheduler luck, if ever."
    )
    suggestion = (
        "take the same lock around the unguarded access, or -- for a "
        "deliberately lock-free read of monotone state -- suppress with "
        "# repro: ignore[lock-discipline] and state why the race is "
        "benign."
    )

    def finish_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    # ---- per-class analysis ---------------------------------------

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = _methods_of(cls)
        if not methods:
            return ()
        lock_attrs = self._lock_attributes(methods)
        accesses: List[_Access] = []
        for method in methods:
            accesses.extend(self._method_accesses(ctx, method, lock_attrs))
        if not accesses:
            return ()

        written: Set[Tuple[str, str]] = set()
        guarded_by: Dict[Tuple[str, str], Set[str]] = {}
        for access in accesses:
            key = (access.receiver, access.attr)
            if access.is_write and access.method not in _CONSTRUCTORS:
                written.add(key)
            for lock in access.held:
                lock_receiver, _, _lock_name = lock.rpartition(".")
                if lock_receiver == access.receiver:
                    guarded_by.setdefault(key, set()).add(lock)

        disciplined = written & set(guarded_by)
        if not disciplined:
            return ()
        findings: List[Finding] = []
        for access in accesses:
            key = (access.receiver, access.attr)
            if key not in disciplined or access.method in _CONSTRUCTORS:
                continue
            locks = guarded_by[key]
            if any(
                lock.rpartition(".")[0] == access.receiver
                for lock in access.held & frozenset(locks)
            ):
                continue
            verb = "written" if access.is_write else "read"
            lock_list = ", ".join(sorted(locks))
            findings.append(
                Finding(
                    rule=self.id,
                    path=str(ctx.path),
                    line=access.line,
                    col=access.col,
                    message=(
                        f"{access.receiver}.{access.attr} is guarded by "
                        f"`with {lock_list}:` elsewhere in {cls.name} but "
                        f"{verb} without it in {access.method}()"
                    ),
                    context=access.snippet,
                    pkg_path=ctx.pkg_path,
                )
            )
        return findings

    # ---- collection ------------------------------------------------

    @staticmethod
    def _lock_attributes(methods: List[ast.FunctionDef]) -> FrozenSet[str]:
        """Attribute names assigned a Lock()/RLock()/... anywhere."""
        locks: Set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                parts = FileContext.dotted(node.value.func)
                if parts is None or parts[-1] not in _LOCK_TYPES:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        locks.add(target.attr)
        return frozenset(locks)

    def _method_accesses(
        self,
        ctx: FileContext,
        method: ast.FunctionDef,
        lock_attrs: FrozenSet[str],
    ) -> List[_Access]:
        cfg = build_cfg(method)
        analysis = HeldLocks()
        flow = run_forward(cfg, analysis)
        accesses: List[_Access] = []
        for element, state in flow.states():
            if isinstance(element, WithExit):
                continue
            held = analysis.held(state)
            # The lock expressions of a `with` header are acquisitions,
            # not races -- exclude them from the access set.
            acquisitions: Set[int] = set()
            if isinstance(element, (ast.With, ast.AsyncWith)):
                for item in element.items:
                    for inner in ast.walk(item.context_expr):
                        acquisitions.add(id(inner))
            for node in walk_element(element):
                if not isinstance(node, ast.Attribute):
                    continue
                if id(node) in acquisitions:
                    continue
                receiver = dotted_path(node.value)
                if receiver is None or node.attr in lock_attrs:
                    continue
                accesses.append(
                    _Access(
                        receiver=receiver,
                        attr=node.attr,
                        held=held,
                        line=node.lineno,
                        col=node.col_offset,
                        method=method.name,
                        is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                        snippet=ctx.snippet(node)[:60],
                    )
                )
        return accesses
