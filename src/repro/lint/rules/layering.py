"""``import-layering``: the package DAG, machine-enforced.

The enforced order (lower layers never import higher ones)::

    core(0) -> graphs,trace(1) -> optim,inference,sched(2) -> sim(3)
            -> profiling,faults(4) -> runtime(5) -> serve(6)
            -> analysis(7) -> lint(8)

``obs`` is the measurement substrate and is importable from anywhere
(it imports nothing of ``repro`` itself).  Note the order reflects the
*actual* dependency direction of the code: ``sim.multijob`` is a thin
client of ``sched`` since PR 1, so ``sched`` sits below ``sim``.
``trace.columnar`` lives in layer 1 like the rest of ``trace``: the
columnar store depends only on ``core`` (for the feature schema and
``FeatureArrays``) and ``obs``, which is what lets every higher layer
-- ``runtime`` suites, ``serve`` replay, ``analysis`` figures -- load
populations through it without new edges.

Only module-level imports are edges.  A function-scoped import is the
sanctioned cycle-breaking idiom (e.g. ``runtime.executor`` pulling the
experiment registry at call time) and is deliberately exempt: it
defers the dependency until after both modules are importable.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["LayeringRule", "LAYERS", "EXEMPT_TARGETS"]

#: Top-level ``repro`` subpackage -> rank.  Imports must point strictly
#: downward (lower rank), except within the same subpackage.
LAYERS: Dict[str, int] = {
    "core": 0,
    "graphs": 1,
    "trace": 1,
    "optim": 2,
    "inference": 2,
    "sched": 2,
    "sim": 3,
    "profiling": 4,
    "faults": 4,
    "runtime": 5,
    "serve": 6,
    "analysis": 7,
    "lint": 8,
}

#: Subpackages importable from any layer.
EXEMPT_TARGETS = frozenset({"obs"})

_ROOT_PACKAGE = "repro"


def _subpackage(dotted: str) -> Optional[str]:
    """The ``repro`` subpackage a dotted module path belongs to."""
    parts = dotted.split(".")
    if len(parts) < 2 or parts[0] != _ROOT_PACKAGE:
        return None
    return parts[1]


@register
class LayeringRule(Rule):
    id = "import-layering"
    title = "imports against the core->...->analysis package DAG"
    rationale = (
        "the subsystems form a strict DAG so that every layer can be "
        "tested, reasoned about and refactored against the layers below "
        "it only; an upward module-level import couples a foundation to "
        "its consumers and eventually deadlocks imports outright."
    )
    suggestion = (
        "move the shared type down a layer, invert the dependency, or "
        "-- when the inversion is intentional -- defer the import into "
        "the using function (function-scoped imports are exempt)."
    )

    def _check(
        self, ctx: FileContext, node: ast.stmt, target: Optional[str]
    ) -> Iterable[Finding]:
        if target is None or ctx.in_function():
            return ()
        importer = _subpackage(ctx.module)
        imported = _subpackage(target)
        if importer is None or imported is None or importer == imported:
            return ()
        if imported in EXEMPT_TARGETS:
            return ()
        if importer in EXEMPT_TARGETS:
            # obs underpins every layer, so it may depend on nothing.
            return (
                self.finding(
                    ctx,
                    node,
                    f"edge {ctx.module} -> {target}: obs is importable "
                    "from anywhere and must itself import nothing of repro",
                ),
            )
        importer_rank = LAYERS.get(importer)
        imported_rank = LAYERS.get(imported)
        if importer_rank is None or imported_rank is None:
            unknown = importer if importer_rank is None else imported
            return (
                self.finding(
                    ctx,
                    node,
                    f"edge {ctx.module} -> {target}: package "
                    f"{unknown!r} has no layer; add it to "
                    "repro.lint.rules.layering.LAYERS",
                ),
            )
        if imported_rank >= importer_rank:
            return (
                self.finding(
                    ctx,
                    node,
                    f"edge {ctx.module} -> {target} points up the DAG "
                    f"({importer} is layer {importer_rank}, {imported} "
                    f"is layer {imported_rank})",
                ),
            )
        return ()

    def visit_Import(
        self, ctx: FileContext, node: ast.Import
    ) -> Iterable[Finding]:
        findings = []
        for alias in node.names:
            findings.extend(self._check(ctx, node, alias.name))
        return findings

    def visit_ImportFrom(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterable[Finding]:
        base = ctx.resolve_import_base(node)
        if not base:
            return ()
        findings = list(self._check(ctx, node, base))
        if findings:
            return findings
        # ``from repro import sched`` binds subpackages too; check the
        # joined names when the base alone names no subpackage.  Only
        # names that are known subpackages count -- ``from repro import
        # __version__`` (or any re-exported symbol) is not a layer edge.
        if _subpackage(base) is None and base == _ROOT_PACKAGE:
            for alias in node.names:
                if alias.name in LAYERS or alias.name in EXEMPT_TARGETS:
                    findings.extend(
                        self._check(ctx, node, f"{base}.{alias.name}")
                    )
        return findings
