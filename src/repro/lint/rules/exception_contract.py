"""``exception-contract``: broad handlers must re-raise or report.

Retry loops (:mod:`repro.serve.client`) and worker fences
(:mod:`repro.runtime.executor`) legitimately catch ``Exception`` -- but
the repo's contract is that a broad catch either *re-raises* (possibly
after cleanup) or *records* what it swallowed through the obs layer, so
a failure is never reduced to silence.  A broad handler that does
neither turns real defects into mysterious absences: the retry that
never logs why it retried, the executor that eats a worker crash.

The rule flags ``except Exception`` / ``except BaseException`` handlers
(bare ``except:`` already belongs to ``api-hygiene``) whose body --
nested ``def``/``class`` bodies excluded, since they run later if at
all -- shows no evidence of handling:

* a ``raise`` (re-raise or translate);
* any use of the bound exception name (``except Exception as error:``
  followed by ``error`` anywhere counts -- formatting it into a message
  or result is reporting);
* a reporting call: ``obs.event``/``error``/``warn``/``warning``/
  ``exception``/``log``/``critical``, ``traceback.*`` or
  ``sys.exc_info`` (the executor's fence serializes the traceback into
  the result tuple -- that is the report).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["ExceptionContractRule"]

#: Exception types broad enough to demand evidence of handling.
_BROAD = frozenset({"Exception", "BaseException"})

#: Call attribute/function names that count as reporting the failure.
_REPORTERS = frozenset(
    {
        "event",
        "error",
        "warn",
        "warning",
        "exception",
        "log",
        "critical",
        "counter",
        "exc_info",
        "format_exc",
        "print_exc",
        "format_exception",
    }
)


def _broad_types(annotation: ast.expr) -> List[str]:
    """Names in the ``except <type>`` clause that are in ``_BROAD``."""
    candidates = (
        annotation.elts if isinstance(annotation, ast.Tuple) else [annotation]
    )
    names: List[str] = []
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD:
            names.append(candidate.id)
    return names


def _body_nodes(handler: ast.ExceptHandler) -> Iterator[ast.AST]:
    """Walk the handler body, opaque to nested function/class bodies."""
    stack: List[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class ExceptionContractRule(Rule):
    id = "exception-contract"
    title = "broad except that swallows without re-raise or report"
    rationale = (
        "a broad `except Exception` that neither re-raises nor records "
        "the failure erases the only evidence a defect ever produced; "
        "retries loop silently on permanent errors and worker crashes "
        "read as missing results instead of failures."
    )
    suggestion = (
        "re-raise (or translate and raise), or report through the obs "
        "layer / the bound exception name before continuing.  A "
        "deliberate last-resort swallow (a dying telemetry sink must "
        "not mask the run) gets # repro: ignore[exception-contract] "
        "with that justification."
    )

    def visit_ExceptHandler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterable[Finding]:
        if node.type is None:
            return ()  # bare except: api-hygiene's finding, not ours
        broad = _broad_types(node.type)
        if not broad:
            return ()
        if self._handles(node):
            return ()
        caught = " | ".join(broad)
        return (
            self.finding(
                ctx,
                node,
                f"`except {caught}` swallows the failure: the body "
                "neither re-raises, nor uses the bound exception, nor "
                "reports through obs/traceback",
            ),
        )

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in _body_nodes(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                bound is not None
                and isinstance(node, ast.Name)
                and node.id == bound
            ):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _REPORTERS:
                    return True
                if isinstance(func, ast.Name) and func.id in _REPORTERS:
                    return True
        return False
