"""``api-hygiene``: the classic Python API footguns.

Three patterns with outsized blast radius in a library meant to be
refactored freely:

* mutable default arguments -- the default is created once and shared
  by every call, so "default" state leaks between callers;
* bare ``except:`` -- swallows ``KeyboardInterrupt`` and ``SystemExit``
  along with the error you meant, turning crash isolation into hangs;
* shadowing builtins -- a parameter or variable named ``id``/``list``/
  ``type`` silently changes what the rest of the scope means.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["ApiHygieneRule"]

#: Builtins whose shadowing bites in practice (a curated subset: names
#: like ``i``/``x`` false-positive never, names like ``compile`` or
#: ``copyright`` are not worth the noise).
_SHADOWED = frozenset(
    {
        "id", "list", "dict", "set", "tuple", "str", "int", "float",
        "bool", "bytes", "type", "input", "filter", "map", "sum", "max",
        "min", "len", "next", "iter", "range", "zip", "all", "any",
        "hash", "format", "vars", "dir", "object", "property", "print",
        "open", "sorted", "repr", "abs", "round",
    }
)

_MUTABLE_DEFAULTS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DEFAULTS):
        return True
    if isinstance(node, ast.Call):
        parts = FileContext.dotted(node.func)
        return parts is not None and parts[-1] in _MUTABLE_CALLS
    return False


@register
class ApiHygieneRule(Rule):
    id = "api-hygiene"
    title = "mutable default args, bare except, shadowed builtins"
    rationale = (
        "a mutable default is one shared object across all calls; a "
        "bare except catches KeyboardInterrupt/SystemExit and turns "
        "crash isolation into hangs; a local named id/list/type changes "
        "the meaning of the rest of its scope."
    )
    suggestion = (
        "default to None and create the container inside the function; "
        "catch Exception (or narrower); rename the binding (job_id, "
        "items, kind...)."
    )

    def _shadow_finding(
        self, ctx: FileContext, node: ast.AST, name: str, what: str
    ) -> Iterable[Finding]:
        # Class bodies are their own namespace: an attribute or method
        # named ``set``/``id`` is reached as ``obj.set`` and shadows
        # nothing for readers of the enclosing scope.
        if ctx.scope and isinstance(ctx.scope[-1], ast.ClassDef):
            return ()
        if name in _SHADOWED:
            return (
                self.finding(
                    ctx,
                    node,
                    f"{what} {name!r} shadows the builtin",
                    context=name,
                ),
            )
        return ()

    def visit_FunctionDef(
        self, ctx: FileContext, node: ast.FunctionDef
    ) -> Iterable[Finding]:
        findings = list(
            self._shadow_finding(ctx, node, node.name, "function name")
        )
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                findings.append(
                    self.finding(
                        ctx,
                        default,
                        "mutable default argument is created once and "
                        "shared by every call",
                    )
                )
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            findings.extend(
                self._shadow_finding(ctx, arg, arg.arg, "parameter")
            )
        return findings

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ExceptHandler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterable[Finding]:
        if node.type is not None:
            return ()
        return (
            self.finding(
                ctx,
                node,
                "bare except swallows KeyboardInterrupt and SystemExit; "
                "catch Exception or narrower",
                context="except:",
            ),
        )

    def visit_Assign(
        self, ctx: FileContext, node: ast.Assign
    ) -> Iterable[Finding]:
        findings = []
        for target in node.targets:
            if isinstance(target, ast.Name):
                findings.extend(
                    self._shadow_finding(ctx, target, target.id, "assignment to")
                )
        return findings

    def visit_For(self, ctx: FileContext, node: ast.For) -> Iterable[Finding]:
        if isinstance(node.target, ast.Name):
            return self._shadow_finding(
                ctx, node.target, node.target.id, "loop variable"
            )
        return ()
