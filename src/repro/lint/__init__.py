"""``repro.lint`` -- flow-aware static analysis for the reproduction.

The headline guarantees of the runtime layer -- byte-identical
warm-cache reports, crash-isolated fork pools, stdout reserved for the
report -- only hold while every experiment stays a pure function of its
fingerprinted inputs, the package DAG stays acyclic, locks guard what
they claim to guard, and every tmp write commits.  This package
machine-checks those invariants:

* a rule registry (:mod:`repro.lint.registry`) with single-pass visitor
  dispatch (:mod:`repro.lint.visitor`) -- one AST walk per file serves
  every syntactic rule;
* an intraprocedural CFG builder (:mod:`repro.lint.cfg`) and a worklist
  dataflow engine (:mod:`repro.lint.dataflow`) for the flow-sensitive
  rules: held locks (``lock-discipline``), open resources
  (``resource-safety``);
* a whole-project call graph (:mod:`repro.lint.callgraph`) backing the
  determinism rule's experiment reachability;
* per-file parallel analysis plus a cross-file project phase in
  :mod:`repro.lint.engine`, with a content-addressed incremental cache
  (:mod:`repro.lint.cache`) so warm runs re-analyze only changed files;
* inline ``# repro: ignore[rule-id]`` suppressions and a committed
  JSON baseline of justified, grandfathered findings (stale entries
  fail the run);
* human, JSON-lines (:mod:`repro.obs` event schema) and SARIF 2.1.0
  (:mod:`repro.lint.sarif`) output, behind ``python -m repro.lint`` /
  ``repro-lint``;
* a pytest bridge (:func:`assert_clean`) so CI and the test suite run
  the same engine.

See ``docs/LINT.md`` for the architecture and the rule catalog.
"""

from .baseline import Baseline, BaselineEntry, write_baseline
from .cache import AnalysisCache, rules_signature
from .callgraph import CallGraph, Reachability
from .cfg import CFG, Block, WithExit, build_cfg
from .dataflow import (
    ForwardAnalysis,
    HeldLocks,
    OpenResources,
    ReachingDefinitions,
    run_forward,
)
from .engine import LintResult, assert_clean, lint_paths, lint_source
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register, rule_ids
from .sarif import render_sarif, to_sarif

__all__ = [
    "AnalysisCache",
    "Baseline",
    "BaselineEntry",
    "Block",
    "CFG",
    "CallGraph",
    "Finding",
    "ForwardAnalysis",
    "HeldLocks",
    "LintResult",
    "OpenResources",
    "Reachability",
    "ReachingDefinitions",
    "Rule",
    "WithExit",
    "all_rules",
    "assert_clean",
    "build_cfg",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "render_sarif",
    "rule_ids",
    "rules_signature",
    "run_forward",
    "to_sarif",
    "write_baseline",
]
