"""``repro.lint`` -- pluggable AST static analysis for the reproduction.

The headline guarantees of the runtime layer -- byte-identical
warm-cache reports, crash-isolated fork pools, stdout reserved for the
report -- only hold while every experiment stays a pure function of its
fingerprinted inputs and the package DAG stays acyclic.  This package
machine-checks those invariants:

* a rule registry (:mod:`repro.lint.registry`) with single-pass visitor
  dispatch (:mod:`repro.lint.visitor`) -- one AST walk per file serves
  every rule;
* per-file parallel analysis plus a cross-file project phase (the
  determinism call graph) in :mod:`repro.lint.engine`;
* inline ``# repro: ignore[rule-id]`` suppressions and a committed
  JSON baseline of justified, grandfathered findings;
* human and JSON-lines output reusing the :mod:`repro.obs` event
  schema, behind ``python -m repro.lint`` / ``repro-lint``;
* a pytest bridge (:func:`assert_clean`) so CI and the test suite run
  the same engine.

See ``docs/LINT.md`` for the rule catalog.
"""

from .baseline import Baseline, BaselineEntry, write_baseline
from .engine import LintResult, assert_clean, lint_paths, lint_source
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register, rule_ids

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "assert_clean",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "rule_ids",
    "write_baseline",
]
