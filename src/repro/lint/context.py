"""Per-file analysis context shared by every rule.

:class:`FileContext` bundles the parsed tree with the derived facts
rules keep needing -- the dotted module name, the import alias map, the
module-level bindings, the suppression table -- each computed lazily and
exactly once per file.  It also exposes name-resolution helpers
(:meth:`FileContext.dotted`, :meth:`FileContext.resolve`) that turn an
AST call target into a best-effort absolute dotted name
(``np.random.rand(...)`` -> ``"numpy.random.rand"``), which is the
currency of the determinism call-graph and the layering rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional

from .findings import MAX_CONTEXT, Finding
from .suppressions import is_suppressed, parse_suppressions

__all__ = ["FileContext", "module_name_of", "pkg_path_of"]

#: Value-node shapes treated as mutable module-level state.
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "Counter", "deque"}
)


def module_name_of(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` chain.

    ``src/repro/core/units.py`` -> ``repro.core.units``; a package's
    ``__init__.py`` maps to the package itself.  A file outside any
    package is just its stem.
    """
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(reversed(parts))


def pkg_path_of(module: str, is_package: bool) -> str:
    """The stable package-relative path for ``module``.

    ``repro.core.units`` -> ``repro/core/units.py``;
    ``repro.core`` (a package) -> ``repro/core/__init__.py``.
    """
    base = module.replace(".", "/")
    return f"{base}/__init__.py" if is_package else f"{base}.py"


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        module: Optional[str] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.is_package = path.name == "__init__.py"
        self.module = module if module is not None else module_name_of(path)
        self.pkg_path = pkg_path_of(self.module, self.is_package)
        #: Enclosing function/class nodes, maintained by the walker.
        self.scope: List[ast.AST] = []
        #: Per-rule scratch space for single-pass collectors.
        self.state: Dict[str, Any] = {}
        self._suppressions: Optional[Dict[int, FrozenSet[str]]] = None
        self._line_aliases: Optional[Dict[int, List[int]]] = None
        self._imports: Optional[Dict[str, str]] = None
        self._module_defs: Optional[FrozenSet[str]] = None
        self._mutable_globals: Optional[Dict[str, int]] = None

    # ---- scope ----------------------------------------------------

    def in_function(self) -> bool:
        """Whether the walker is currently inside a def/lambda."""
        return any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            for node in self.scope
        )

    def qualname(self) -> str:
        """Dotted name of the enclosing scope (``module.Class.method``)."""
        names = [
            node.name
            for node in self.scope
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        return ".".join([self.module] + names) if names else self.module

    # ---- suppressions ---------------------------------------------

    @property
    def suppressions(self) -> Dict[int, FrozenSet[str]]:
        if self._suppressions is None:
            self._suppressions = parse_suppressions(self.source)
        return self._suppressions

    @property
    def line_aliases(self) -> Dict[int, List[int]]:
        """Finding line -> other lines whose markers also cover it.

        A decorated ``def``/``class`` reports findings at the ``def``
        line, but the statement *starts* at its first decorator -- an
        ignore comment on any decorator line covers the definition.
        """
        if self._line_aliases is None:
            aliases: Dict[int, List[int]] = {}
            for node in ast.walk(self.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ) and node.decorator_list:
                    aliases[node.lineno] = [
                        decorator.lineno for decorator in node.decorator_list
                    ]
            self._line_aliases = aliases
        return self._line_aliases

    def suppressed(self, rule_id: str, line: int) -> bool:
        if is_suppressed(self.suppressions, rule_id, line):
            return True
        return any(
            is_suppressed(self.suppressions, rule_id, alias)
            for alias in self.line_aliases.get(line, ())
        )

    # ---- imports & bindings ---------------------------------------

    @property
    def imports(self) -> Dict[str, str]:
        """Local alias -> absolute dotted target, for module-level imports.

        ``import numpy as np`` -> ``{"np": "numpy"}``;
        ``from ..core.units import GB`` (in ``repro.trace.calibration``)
        -> ``{"GB": "repro.core.units.GB"}``.
        """
        if self._imports is None:
            mapping: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        target = alias.name if alias.asname else local
                        mapping[local] = target
                elif isinstance(node, ast.ImportFrom):
                    base = self.resolve_import_base(node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        mapping[local] = f"{base}.{alias.name}" if base else alias.name
            self._imports = mapping
        return self._imports

    def resolve_import_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted package a ``from ... import`` pulls from."""
        if node.level == 0:
            return node.module or ""
        parts = self.module.split(".") if self.module else []
        if not self.is_package:
            parts = parts[:-1]
        parts = parts[: len(parts) - (node.level - 1)] if node.level > 1 else parts
        if node.level - 1 > 0 and not parts:
            return None
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    @property
    def module_defs(self) -> FrozenSet[str]:
        """Names of functions/classes defined at module top level."""
        if self._module_defs is None:
            self._module_defs = frozenset(
                node.name
                for node in self.tree.body
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            )
        return self._module_defs

    @property
    def mutable_globals(self) -> Dict[str, int]:
        """Module-level names bound to mutable literals -> binding line."""
        if self._mutable_globals is None:
            bindings: Dict[str, int] = {}
            for node in self.tree.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None or not _is_mutable_value(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = node.lineno
            self._mutable_globals = bindings
        return self._mutable_globals

    # ---- name resolution ------------------------------------------

    @staticmethod
    def dotted(node: ast.expr) -> Optional[List[str]]:
        """Flatten a ``Name``/``Attribute`` chain to its parts, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return parts

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Best-effort absolute dotted name of an expression.

        Resolves the head through the import alias map; a bare name
        defined at module top level resolves to ``module.name``.
        Returns ``None`` when the target is not statically nameable
        (calls on call results, subscripts, locals...).
        """
        parts = self.dotted(node)
        if parts is None:
            return None
        head = parts[0]
        resolved_head = self.imports.get(head)
        if resolved_head is not None:
            return ".".join([resolved_head] + parts[1:])
        if head in self.module_defs:
            return ".".join([self.module, head] + parts[1:]) if self.module else None
        return None

    # ---- findings -------------------------------------------------

    def snippet(self, node: ast.AST) -> str:
        """The offending source, unparsed and truncated."""
        try:
            text = ast.unparse(node)
        # repro: ignore[exception-contract] cosmetic fallback: a snippet
        # that fails to unparse must not fail the lint run itself
        except Exception:
            text = ""
        return text[:MAX_CONTEXT]

    def finding(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        *,
        context: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=rule_id,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            context=self.snippet(node) if context is None else context,
            pkg_path=self.pkg_path,
        )


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        parts = FileContext.dotted(value.func)
        return parts is not None and parts[-1] in _MUTABLE_CALLS
    return False
