"""RunMetadata-style runtime traces (Fig. 4, "Runtime Profiling").

TensorFlow's ``tf.RunMetadata`` records device placement, kernel launch
and execution times and tensor attributes; the paper's characterization
framework consumes that trace plus job-level metadata (how many workers
a job uses).  This module provides the equivalent records over our
simulator's timelines, so the same feature-extraction pipeline can run
on simulated steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.architectures import Architecture
from ..sim.events import TimelineRecord
from ..sim.measurement import StepMeasurement

__all__ = ["OpTraceEntry", "JobMetadata", "RunMetadata"]


@dataclass(frozen=True)
class OpTraceEntry:
    """One profiled activity: a kernel execution or a transfer."""

    op_name: str
    device: str
    start_us: float
    end_us: float
    category: str
    volume: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @staticmethod
    def from_record(record: TimelineRecord) -> "OpTraceEntry":
        return OpTraceEntry(
            op_name=record.name,
            device=record.resource,
            start_us=record.start * 1e6,
            end_us=record.end * 1e6,
            category=record.category,
            volume=record.volume,
        )


@dataclass(frozen=True)
class JobMetadata:
    """Job-level resource allocation (the "Job Meta Info" of Fig. 4).

    Run metadata describes a single computation node; job metadata
    supplies the rest: how many workers/PS nodes the job uses and the
    system architecture.
    """

    job_name: str
    architecture: Architecture
    num_workers: int
    num_parameter_servers: int = 0
    gpus_per_worker: int = 1
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.num_parameter_servers < 0:
            raise ValueError("num_parameter_servers must be non-negative")

    @property
    def num_cnodes(self) -> int:
        """Computation nodes = model replicas = worker GPUs."""
        return self.num_workers * self.gpus_per_worker


class RunMetadata:
    """The profiled trace of one training step."""

    def __init__(self, entries: List[OpTraceEntry]) -> None:
        self._entries = sorted(entries, key=lambda e: (e.start_us, e.op_name))

    @staticmethod
    def from_measurement(measurement: StepMeasurement) -> "RunMetadata":
        return RunMetadata(
            [OpTraceEntry.from_record(r) for r in measurement.records]
        )

    @property
    def entries(self) -> Tuple[OpTraceEntry, ...]:
        return tuple(self._entries)

    def devices(self) -> List[str]:
        """All devices/channels observed, sorted."""
        return sorted({entry.device for entry in self._entries})

    def entries_on(self, device: str) -> List[OpTraceEntry]:
        return [e for e in self._entries if e.device == device]

    def entries_of(self, category: str) -> List[OpTraceEntry]:
        return [e for e in self._entries if e.category == category]

    def total_volume(self, category: str) -> float:
        """Summed volume (FLOPs or bytes) of one activity category."""
        return sum(e.volume for e in self.entries_of(category))

    def busy_time_us(self, category: str) -> float:
        return sum(e.duration_us for e in self.entries_of(category))

    def step_span_us(self) -> float:
        """Wall-clock span of the step."""
        if not self._entries:
            return 0.0
        return max(e.end_us for e in self._entries) - min(
            e.start_us for e in self._entries
        )

    def summary(self) -> Dict[str, float]:
        categories = sorted({e.category for e in self._entries})
        return {
            category: self.busy_time_us(category) for category in categories
        }
