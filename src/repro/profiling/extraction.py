"""Workload feature extraction (Fig. 4, "Workload Feature Extraction").

Turns a profiled step (:class:`~repro.profiling.runmeta.RunMetadata`)
plus the job metadata into the per-cNode feature tuple the analytical
model consumes.  This closes the loop of the characterization
framework: profile -> extract features -> estimate breakdown -> compare
against the measured breakdown.
"""

from __future__ import annotations

from typing import Dict

from ..core.features import WorkloadFeatures
from ..sim.measurement import medium_of_resource
from .runmeta import JobMetadata, RunMetadata

__all__ = ["extract_features", "extract_weight_traffic_by_medium"]


def extract_weight_traffic_by_medium(metadata: RunMetadata) -> Dict[str, float]:
    """Observed weight/gradient wire volume per medium, whole job."""
    volumes: Dict[str, float] = {}
    for entry in metadata.entries_of("weight"):
        medium = medium_of_resource(entry.device)
        volumes[medium] = volumes.get(medium, 0.0) + entry.volume
    return volumes


def extract_features(
    metadata: RunMetadata,
    job: JobMetadata,
    dense_weight_bytes: float = 0.0,
    embedding_weight_bytes: float = 0.0,
) -> WorkloadFeatures:
    """Extract per-cNode, per-step features from a profiled step.

    Compute records carry their FLOP volume; memory records their byte
    volume; input records the host-to-device copy; weight records the
    wire traffic on each hop (so a PS round trip contributes once per
    medium -- the per-cNode traffic is taken as the *maximum* over
    media, matching the ``S_w`` convention of a single logical volume
    that crosses every hop).

    The at-rest weight sizes are not observable in a runtime trace and
    are supplied from the job's checkpoint metadata when available.
    """
    cnodes = max(job.num_cnodes, 1)
    flop_count = metadata.total_volume("compute") / cnodes
    memory_access = metadata.total_volume("memory") / cnodes
    input_bytes = metadata.total_volume("input") / cnodes
    weight_by_medium = extract_weight_traffic_by_medium(metadata)
    weight_traffic = (
        max(weight_by_medium.values()) / cnodes if weight_by_medium else 0.0
    )
    return WorkloadFeatures(
        name=job.job_name,
        architecture=job.architecture,
        num_cnodes=cnodes,
        batch_size=job.batch_size,
        flop_count=flop_count,
        memory_access_bytes=memory_access,
        input_bytes=input_bytes,
        weight_traffic_bytes=weight_traffic,
        dense_weight_bytes=dense_weight_bytes,
        embedding_weight_bytes=embedding_weight_bytes,
    )
