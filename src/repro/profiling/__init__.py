"""Runtime profiling and feature extraction (the Fig. 4 pipeline)."""

from .extraction import extract_features, extract_weight_traffic_by_medium
from .runmeta import JobMetadata, OpTraceEntry, RunMetadata

__all__ = [
    "JobMetadata",
    "OpTraceEntry",
    "RunMetadata",
    "extract_features",
    "extract_weight_traffic_by_medium",
]
