"""repro -- reproduction of *Characterizing Deep Learning Training
Workloads on Alibaba-PAI* (Wang et al., IISWC 2019).

The package provides:

* :mod:`repro.core` -- the analytical execution-time model, architecture
  projection, hardware sweeps and sensitivity analyses (the paper's
  primary contribution);
* :mod:`repro.graphs` -- an op-level deep-learning model substrate with
  builders for the six case-study models of Sec. IV;
* :mod:`repro.trace` -- a calibrated synthetic PAI cluster trace standing
  in for the proprietary production trace of Sec. III;
* :mod:`repro.sim` -- a discrete-event "testbed" simulator used for the
  measured side of the Sec. IV validation and optimization studies;
* :mod:`repro.profiling` -- RunMetadata-style traces and the feature
  extraction pipeline of Fig. 4;
* :mod:`repro.optim` -- mixed-precision and XLA-style fusion passes
  (Sec. IV-D);
* :mod:`repro.faults` -- deterministic fault injection into the
  simulator and scheduler, with a telemetry-only root-cause-analysis
  pipeline graded by a scored scenario harness;
* :mod:`repro.analysis` -- one experiment module per table/figure of the
  paper, plus a text report renderer and CLI.

Quickstart::

    from repro import (
        Architecture, WorkloadFeatures,
        estimate_breakdown, pai_default_hardware,
    )

    features = WorkloadFeatures(
        name="resnet50-like", architecture=Architecture.PS_WORKER,
        num_cnodes=16, batch_size=64, flop_count=1.56e12,
        memory_access_bytes=31.9e9, input_bytes=38e6,
        weight_traffic_bytes=357e6, dense_weight_bytes=204e6,
    )
    breakdown = estimate_breakdown(features, pai_default_hardware())
    print(breakdown.fractions())
"""

from .core import (
    ALLREDUCE_LOCAL_MAX_CNODES,
    AnalyzedJob,
    Architecture,
    EfficiencyModel,
    GpuSpec,
    HardwareConfig,
    HardwareVariations,
    LinkSpec,
    ModelOptions,
    OverlapMode,
    PAPER_DEFAULT_EFFICIENCY,
    PAPER_MODEL_OPTIONS,
    ProjectionResult,
    ServerSpec,
    TABLE_III_VARIATIONS,
    TABLE_VI_EFFICIENCIES,
    TimeBreakdown,
    WorkloadFeatures,
    analyze_population,
    average_fractions,
    average_hardware_shares,
    estimate_breakdown,
    estimate_step_time,
    job_throughput,
    pai_default_hardware,
    project_to_allreduce_cluster,
    project_to_allreduce_local,
    projection_speedups,
    step_speedup,
    sweep_all_resources,
    testbed_v100_hardware,
    throughput_speedup,
)

__version__ = "1.7.0"

__all__ = [
    "ALLREDUCE_LOCAL_MAX_CNODES",
    "AnalyzedJob",
    "Architecture",
    "EfficiencyModel",
    "GpuSpec",
    "HardwareConfig",
    "HardwareVariations",
    "LinkSpec",
    "ModelOptions",
    "OverlapMode",
    "PAPER_DEFAULT_EFFICIENCY",
    "PAPER_MODEL_OPTIONS",
    "ProjectionResult",
    "ServerSpec",
    "TABLE_III_VARIATIONS",
    "TABLE_VI_EFFICIENCIES",
    "TimeBreakdown",
    "WorkloadFeatures",
    "analyze_population",
    "average_fractions",
    "average_hardware_shares",
    "estimate_breakdown",
    "estimate_step_time",
    "job_throughput",
    "pai_default_hardware",
    "project_to_allreduce_cluster",
    "project_to_allreduce_local",
    "projection_speedups",
    "step_speedup",
    "sweep_all_resources",
    "testbed_v100_hardware",
    "throughput_speedup",
    "__version__",
]
