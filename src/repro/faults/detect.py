"""Changepoint detection over the captured symptom stream.

The detector is deliberately operator-shaped: establish a rolling
baseline per metric series from a warmup window, flag sustained
relative deviations, and emit typed :class:`Anomaly` records.  It sees
only :mod:`repro.faults.telemetry` events -- never the
:class:`~repro.faults.spec.FaultPlan`.

Symptoms and their series:

* ``compute_inflation`` / ``step_inflation`` -- per-replica
  ``telemetry.step`` timings rise above baseline;
* ``link_rate_drop`` -- a ``telemetry.link`` channel's observed
  throughput falls below baseline;
* ``shard_skew`` -- the max/mean ratio of ``telemetry.ps_shard``
  traffic counters rises (one shard runs hot);
* ``job_failure`` -- a ``sched.job_failed`` event;
* ``preemption_burst`` -- >= :data:`BURST_MIN_EVENTS` preemptions
  hitting >= :data:`BURST_MIN_JOBS` distinct jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spec import fleet_target, job_target, link_target, ps_target, replica_target

__all__ = [
    "Anomaly",
    "detect",
    "detect_series",
    "rolling_baseline",
]

#: Samples used to establish a series baseline.
WARMUP_SAMPLES = 8
#: Relative deviation that counts as anomalous (25%).
REL_THRESHOLD = 0.25
#: Throughput-drop threshold (link rates are low-noise; 15%).
DROP_THRESHOLD = 0.15
#: Consecutive anomalous samples required before flagging.
SUSTAIN = 3
#: Max/mean shard-traffic ratio that counts as a hotspot.
SKEW_THRESHOLD = 1.5
#: Preemption events / distinct victims that count as a storm.
BURST_MIN_EVENTS = 3
BURST_MIN_JOBS = 2


@dataclass(frozen=True)
class Anomaly:
    """One flagged symptom.

    Attributes:
        symptom: Symptom family (see module docstring).
        target: Canonical target label of the affected entity.
        onset: First tick/hour of the sustained deviation.
        magnitude: Peak relative deviation (or event count for
            discrete symptoms).
    """

    symptom: str
    target: str
    onset: float
    magnitude: float


def rolling_baseline(
    values: Sequence[float], warmup: int = WARMUP_SAMPLES
) -> float:
    """Median of the warmup window (robust to a single early outlier)."""
    if not values:
        raise ValueError("cannot baseline an empty series")
    window = sorted(values[: max(1, warmup)])
    mid = len(window) // 2
    if len(window) % 2:
        return window[mid]
    return 0.5 * (window[mid - 1] + window[mid])


def detect_series(
    times: Sequence[float],
    values: Sequence[float],
    *,
    direction: str,
    threshold: float = REL_THRESHOLD,
    warmup: int = WARMUP_SAMPLES,
    sustain: int = SUSTAIN,
) -> Optional[Tuple[float, float]]:
    """First sustained relative deviation of a series from its baseline.

    Args:
        times: Sample timestamps (ticks or hours), ascending.
        values: Sample values, parallel to ``times``.
        direction: ``"up"`` flags inflation, ``"down"`` flags drops.
        threshold: Relative deviation that counts.
        warmup: Baseline window length.
        sustain: Consecutive anomalous samples required.

    Returns:
        ``(onset, peak_relative_deviation)`` or ``None``.
    """
    if direction not in ("up", "down"):
        raise ValueError("direction must be 'up' or 'down'")
    if len(times) != len(values):
        raise ValueError("times and values must be parallel")
    if len(values) <= warmup:
        return None
    baseline = rolling_baseline(values, warmup)
    if baseline <= 0:
        return None
    run_start: Optional[int] = None
    run_length = 0
    peak = 0.0
    for index in range(warmup, len(values)):
        deviation = values[index] / baseline - 1.0
        if direction == "down":
            deviation = -deviation
        if deviation > threshold:
            if run_start is None:
                run_start = index
            run_length += 1
            peak = max(peak, deviation)
            if run_length >= sustain:
                # Scan on: the peak over the whole excursion is a
                # better magnitude estimate than the first 3 samples.
                for later in range(index + 1, len(values)):
                    later_dev = values[later] / baseline - 1.0
                    if direction == "down":
                        later_dev = -later_dev
                    if later_dev <= threshold:
                        break
                    peak = max(peak, later_dev)
                return times[run_start], peak
        else:
            run_start = None
            run_length = 0
            peak = 0.0
    return None


def _series(
    events: Iterable[Dict[str, Any]],
    kind: str,
    key_field: str,
    time_field: str,
    value_field: str,
) -> Dict[Any, Tuple[List[float], List[float]]]:
    """Group one event kind into per-key (times, values) series."""
    series: Dict[Any, Tuple[List[float], List[float]]] = {}
    for event in events:
        if event.get("kind") != kind:
            continue
        times, values = series.setdefault(event[key_field], ([], []))
        times.append(float(event[time_field]))
        values.append(float(event[value_field]))
    return series


def _detect_step(events: List[Dict[str, Any]]) -> List[Anomaly]:
    anomalies: List[Anomaly] = []
    for field, symptom in (
        ("compute_s", "compute_inflation"),
        ("step_s", "step_inflation"),
    ):
        for replica, (times, values) in sorted(
            _series(events, "telemetry.step", "replica", "tick", field).items()
        ):
            hit = detect_series(times, values, direction="up")
            if hit is not None:
                anomalies.append(
                    Anomaly(symptom, replica_target(replica), hit[0], hit[1])
                )
    return anomalies


def _detect_link(events: List[Dict[str, Any]]) -> List[Anomaly]:
    anomalies: List[Anomaly] = []
    for field, link_kind in (("nic_rate", "nic"), ("pcie_rate", "pcie")):
        for server, (times, values) in sorted(
            _series(events, "telemetry.link", "server", "tick", field).items()
        ):
            hit = detect_series(
                times, values, direction="down", threshold=DROP_THRESHOLD
            )
            if hit is not None:
                anomalies.append(
                    Anomaly(
                        "link_rate_drop",
                        link_target(server, link_kind),
                        hit[0],
                        hit[1],
                    )
                )
    return anomalies


def _detect_shards(events: List[Dict[str, Any]]) -> List[Anomaly]:
    # Re-shape per-shard counters into a per-tick skew-ratio series.
    by_tick: Dict[float, Dict[int, float]] = {}
    for event in events:
        if event.get("kind") != "telemetry.ps_shard":
            continue
        by_tick.setdefault(float(event["tick"]), {})[event["shard"]] = float(
            event["bytes"]
        )
    if not by_tick:
        return []
    ticks = sorted(by_tick)
    ratios: List[float] = []
    hottest: List[int] = []
    for tick in ticks:
        loads = by_tick[tick]
        mean = sum(loads.values()) / len(loads)
        hot_shard = max(sorted(loads), key=lambda s: loads[s])
        ratios.append(loads[hot_shard] / mean if mean > 0 else 1.0)
        hottest.append(hot_shard)
    # Skew ratios baseline at ~1; flag absolute threshold crossings.
    run_start: Optional[int] = None
    run_length = 0
    for index, ratio in enumerate(ratios):
        if ratio > SKEW_THRESHOLD:
            if run_start is None:
                run_start = index
            run_length += 1
            if run_length >= SUSTAIN:
                peak = max(ratios[run_start:])
                return [
                    Anomaly(
                        "shard_skew",
                        ps_target(hottest[run_start]),
                        ticks[run_start],
                        peak,
                    )
                ]
        else:
            run_start = None
            run_length = 0
    return []


def _detect_sched(events: List[Dict[str, Any]]) -> List[Anomaly]:
    anomalies: List[Anomaly] = []
    failures = [e for e in events if e.get("kind") == "sched.job_failed"]
    for failure in failures:
        anomalies.append(
            Anomaly(
                "job_failure",
                job_target(failure["job_id"]),
                float(failure["hour"]),
                float(failure.get("retries", 1)),
            )
        )
    preemptions = [e for e in events if e.get("kind") == "sched.preempted"]
    victims = {e["job_id"] for e in preemptions}
    if len(preemptions) >= BURST_MIN_EVENTS and len(victims) >= BURST_MIN_JOBS:
        anomalies.append(
            Anomaly(
                "preemption_burst",
                fleet_target(),
                min(float(e["hour"]) for e in preemptions),
                float(len(preemptions)),
            )
        )
    return anomalies


def detect(events: Iterable[Dict[str, Any]]) -> Tuple[Anomaly, ...]:
    """All anomalies flagged in one captured telemetry stream."""
    stream = list(events)
    anomalies: List[Anomaly] = []
    anomalies.extend(_detect_sched(stream))
    anomalies.extend(_detect_step(stream))
    anomalies.extend(_detect_link(stream))
    anomalies.extend(_detect_shards(stream))
    return tuple(anomalies)
