"""Compile a :class:`~repro.faults.spec.FaultPlan` to the injection hooks.

The plan layer speaks in typed specs with activation windows; the
simulator and scheduler speak in their own narrow hook records
(:class:`repro.sim.StepFaults` per step, :class:`repro.sched.SchedFaults`
per run).  This module owns the translation in one direction only --
the hooks never learn fault identities, and the detection layer never
imports this module.
"""

from __future__ import annotations

from .spec import FaultKind, FaultPlan, parse_target

from ..sched import CrashSpec, SchedFaults, StormSpec
from ..sim import LINK_KINDS, StepFaults

__all__ = ["sched_faults_for", "step_faults_at"]

#: Waves per preemption storm; the spec's window is split evenly.
STORM_TICKS = 3


def step_faults_at(
    plan: FaultPlan, tick: float, num_shards: int
) -> StepFaults:
    """The :class:`StepFaults` record active during one simulator tick.

    Overlapping faults compose: the worst slowdown per replica, the
    worst bandwidth fraction per link, the last hotspot's weights.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    compute = {}
    links = {}
    weights = None
    for fault in plan.sim_faults:
        if not fault.active_at(tick):
            continue
        parts = parse_target(fault.target)
        if fault.kind is FaultKind.STRAGGLER:
            replica = int(parts[1])
            compute[replica] = max(compute.get(replica, 1.0), fault.severity)
        elif fault.kind is FaultKind.LINK_DEGRADATION:
            server, kind = int(parts[1]), parts[2]
            if kind not in LINK_KINDS:
                raise ValueError(f"unknown link kind in target: {kind!r}")
            key = (server, kind)
            links[key] = min(links.get(key, 1.0), fault.severity)
        elif fault.kind is FaultKind.PS_HOTSPOT:
            shard = int(parts[1])
            if shard >= num_shards:
                raise ValueError(
                    f"hotspot shard {shard} outside fleet of {num_shards}"
                )
            weights = tuple(
                fault.severity if i == shard else 1.0
                for i in range(num_shards)
            )
    return StepFaults(
        compute_multipliers=compute,
        link_bandwidth=links,
        ps_shard_weights=weights,
    )


def sched_faults_for(plan: FaultPlan) -> SchedFaults:
    """The :class:`SchedFaults` record for one engine run."""
    crashes = []
    storms = []
    for fault in plan.sched_faults:
        if fault.kind is FaultKind.WORKER_CRASH:
            parts = parse_target(fault.target)
            job_id = None if parts[1] == "*" else int(parts[1])
            crashes.append(
                CrashSpec(
                    hour=fault.onset,
                    job_id=job_id,
                    backoff_hours=fault.severity,
                )
            )
        else:  # PREEMPTION_STORM
            storms.append(
                StormSpec(
                    start_hour=fault.onset,
                    ticks=STORM_TICKS,
                    interval_hours=fault.duration / STORM_TICKS,
                    victims_per_tick=int(fault.severity),
                )
            )
    return SchedFaults(crashes=tuple(crashes), storms=tuple(storms))
