"""Symptom -> root-cause attribution.

Each fault kind leaves a distinguishable symptom signature in the
telemetry (this is what makes telemetry-only RCA possible here):

=====================  ===========================================
root cause             signature
=====================  ===========================================
``WORKER_CRASH``       a ``job_failure`` anomaly
``PREEMPTION_STORM``   a ``preemption_burst`` anomaly
``STRAGGLER``          ``compute_inflation`` on specific replicas
                       (their ``step_s`` inflates too)
``LINK_DEGRADATION``   ``link_rate_drop`` on one channel, *without*
                       compute inflation (only that server's
                       replica's ``step_s`` inflates)
``PS_HOTSPOT``         ``shard_skew`` on the shard counters, with
                       *every* replica's ``step_s`` inflated but
                       compute and link rates flat
=====================  ===========================================

The attribution order below encodes exactly that decision list; the
confidence is a crude corroboration count, not a probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from .detect import Anomaly, detect
from .spec import FaultKind

__all__ = ["Diagnosis", "diagnose", "localize"]


@dataclass(frozen=True)
class Diagnosis:
    """The pipeline's verdict on one telemetry stream."""

    kind: Optional[FaultKind]
    target: Optional[str]
    onset: Optional[float]
    confidence: float
    evidence: Tuple[str, ...]

    @property
    def is_healthy(self) -> bool:
        """Whether the stream looked nominal end to end."""
        return self.kind is None


def _strongest(anomalies: Sequence[Anomaly]) -> Anomaly:
    """Deterministic pick: largest magnitude, then target label."""
    return max(anomalies, key=lambda a: (a.magnitude, a.target))


def localize(anomalies: Iterable[Anomaly]) -> Diagnosis:
    """Attribute a set of anomalies to a single root cause."""
    flagged = list(anomalies)
    by_symptom: Dict[str, list] = {}
    for anomaly in flagged:
        by_symptom.setdefault(anomaly.symptom, []).append(anomaly)
    evidence = tuple(
        f"{a.symptom}@{a.target}(+{a.magnitude:.2f})" for a in flagged
    )

    failures = by_symptom.get("job_failure", [])
    if failures:
        first = min(failures, key=lambda a: a.onset)
        return Diagnosis(
            FaultKind.WORKER_CRASH, first.target, first.onset,
            min(1.0, len(failures)), evidence,
        )

    bursts = by_symptom.get("preemption_burst", [])
    if bursts:
        burst = bursts[0]
        return Diagnosis(
            FaultKind.PREEMPTION_STORM, burst.target, burst.onset,
            min(1.0, burst.magnitude / 6.0), evidence,
        )

    compute = by_symptom.get("compute_inflation", [])
    if compute:
        top = _strongest(compute)
        corroborated = any(
            a.target == top.target
            for a in by_symptom.get("step_inflation", [])
        )
        return Diagnosis(
            FaultKind.STRAGGLER, top.target, top.onset,
            1.0 if corroborated else 0.6, evidence,
        )

    drops = by_symptom.get("link_rate_drop", [])
    if drops:
        top = _strongest(drops)
        return Diagnosis(
            FaultKind.LINK_DEGRADATION, top.target, top.onset,
            min(1.0, 0.5 + top.magnitude), evidence,
        )

    skews = by_symptom.get("shard_skew", [])
    if skews:
        skew = skews[0]
        inflated = by_symptom.get("step_inflation", [])
        return Diagnosis(
            FaultKind.PS_HOTSPOT, skew.target, skew.onset,
            1.0 if len(inflated) > 1 else 0.6, evidence,
        )

    # Every replica slower with flat compute, links and shards: the
    # synchronization tier is sick but unattributable to one shard.
    inflated = by_symptom.get("step_inflation", [])
    if len(inflated) > 1:
        first = min(inflated, key=lambda a: a.onset)
        return Diagnosis(
            FaultKind.PS_HOTSPOT, None, first.onset, 0.3, evidence
        )

    return Diagnosis(None, None, None, 0.0, evidence)


def diagnose(events: Iterable[Dict[str, Any]]) -> Diagnosis:
    """Full pipeline: detect anomalies, then attribute them."""
    return localize(detect(events))
