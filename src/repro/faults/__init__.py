"""``repro.faults`` -- deterministic fault injection and telemetry-only RCA.

The simulator and scheduler are failure-free by construction; the PAI
clusters the paper characterizes are multi-tenant and failure-prone.
This package closes that gap with three layers:

* **injection** -- a seeded :class:`FaultPlan` of typed
  :class:`FaultSpec` records (compute straggler, link degradation,
  worker crash, PS shard hotspot, preemption storm) compiled down to
  the low-layer hooks :class:`repro.sim.StepFaults` and
  :class:`repro.sched.SchedFaults` by :mod:`repro.faults.injector`;
* **anomaly telemetry** -- fault *symptoms* (never identities) stream
  into :mod:`repro.obs` as structured events
  (:mod:`repro.faults.telemetry` documents the schema);
* **detection + attribution** -- rolling-baseline changepoint
  detection (:mod:`repro.faults.detect`) feeding a symptom-signature
  decision list (:mod:`repro.faults.localize`), graded end to end by
  the scored scenario harness (:mod:`repro.faults.scenarios`).

Everything is seeded: the same ``(count, seed)`` reproduces
byte-identical scenario telemetry and scores.
"""

from .detect import Anomaly, detect, detect_series, rolling_baseline
from .injector import sched_faults_for, step_faults_at
from .localize import Diagnosis, diagnose, localize
from .scenarios import (
    ScenarioReport,
    ScenarioResult,
    ScenarioSpec,
    run_scenario,
    scenario_specs,
    score_suite,
)
from .spec import (
    SCHED_KINDS,
    SIM_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    fleet_target,
    job_target,
    link_target,
    parse_target,
    ps_target,
    replica_target,
)
from .telemetry import (
    TELEMETRY_KINDS,
    canonical_events,
    capture,
    events_digest,
)

__all__ = [
    "Anomaly",
    "Diagnosis",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "SCHED_KINDS",
    "SIM_KINDS",
    "ScenarioReport",
    "ScenarioResult",
    "ScenarioSpec",
    "TELEMETRY_KINDS",
    "canonical_events",
    "capture",
    "detect",
    "detect_series",
    "diagnose",
    "events_digest",
    "fleet_target",
    "job_target",
    "link_target",
    "localize",
    "parse_target",
    "ps_target",
    "replica_target",
    "rolling_baseline",
    "run_scenario",
    "scenario_specs",
    "sched_faults_for",
    "score_suite",
    "step_faults_at",
]
