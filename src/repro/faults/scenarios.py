"""The scored scenario harness: inject, observe, diagnose, grade.

One scenario is one seeded :class:`~repro.faults.spec.FaultPlan` with a
single root cause, run end to end:

1. **inject** -- sim-kind faults drive a 48-tick PS/Worker training-run
   replay (two :func:`repro.sim.simulate_step` configurations -- healthy
   and fault-active -- with seeded measurement noise per tick);
   sched-kind faults drive a compressed 60-job trace replay through
   :func:`repro.sched.run_schedule`;
2. **observe** -- symptoms stream into :mod:`repro.obs` as
   ``telemetry.*`` / ``sched.*`` events captured by
   :func:`repro.faults.telemetry.capture`;
3. **diagnose** -- :func:`repro.faults.localize.diagnose` sees only the
   canonical event stream (never the plan);
4. **grade** -- the diagnosis is scored against the plan's ground truth
   on fault kind, target and onset.

Everything is seeded, so a :class:`ScenarioReport` for a given
``(count, seed)`` is byte-identical across runs -- asserted via the
per-scenario telemetry digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.architectures import Architecture
from ..graphs.features_from_graph import Deployment
from ..graphs.graph import ModelGraph
from ..graphs.ops import matmul_op
from ..obs import DEBUG, get_obs
from ..sched import FifoPolicy, Fleet, run_schedule
from ..sim import SimulationOptions, shard_loads, simulate_step
from ..trace.generator import generate_trace
from .injector import sched_faults_for, step_faults_at
from .localize import Diagnosis, diagnose
from .spec import (
    SCHED_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    fleet_target,
    job_target,
    link_target,
    ps_target,
    replica_target,
)
from .telemetry import canonical_events, capture, events_digest

__all__ = [
    "ScenarioReport",
    "ScenarioResult",
    "ScenarioSpec",
    "run_scenario",
    "scenario_specs",
    "score_suite",
]

#: Default suite seed (the trace generator's PAI-era default).
DEFAULT_SEED = 20190501

# ---- sim-scenario geometry ------------------------------------------
SIM_TICKS = 48
NUM_REPLICAS = 4
NUM_SHARDS = 4
#: Log-space sigma of the per-sample measurement noise.
NOISE_SIGMA = 0.02

# ---- sched-scenario geometry ----------------------------------------
SCHED_TRACE_JOBS = 60
SCHED_SERVERS = 8
SCHED_ARRIVAL_DAYS = 3

#: Onset-grading tolerance: ticks for sim kinds, hours for sched kinds.
ONSET_TOLERANCE_SIM = 3.0
ONSET_TOLERANCE_SCHED = 6.0

#: All five kinds, in round-robin order over scenario ids, so any
#: suite of >= 5 scenarios covers every kind.
_KIND_CYCLE = (
    FaultKind.STRAGGLER,
    FaultKind.LINK_DEGRADATION,
    FaultKind.WORKER_CRASH,
    FaultKind.PS_HOTSPOT,
    FaultKind.PREEMPTION_STORM,
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One runnable scenario: id, seed and its single-fault plan."""

    scenario_id: int
    plan: FaultPlan

    @property
    def fault(self) -> FaultSpec:
        return self.plan.faults[0]

    @property
    def is_sched(self) -> bool:
        return self.fault.kind in SCHED_KINDS


def _sim_fault(kind: FaultKind, rng: np.random.Generator) -> FaultSpec:
    onset = float(rng.integers(12, 30))
    duration = float(rng.integers(8, 18))
    if kind is FaultKind.STRAGGLER:
        target = replica_target(int(rng.integers(0, NUM_REPLICAS)))
        severity = 1.6 + 1.4 * float(rng.random())
    elif kind is FaultKind.LINK_DEGRADATION:
        server = int(rng.integers(0, NUM_REPLICAS))
        link_kind = ("nic", "pcie")[int(rng.integers(0, 2))]
        target = link_target(server, link_kind)
        severity = 0.25 + 0.35 * float(rng.random())
    else:  # PS_HOTSPOT
        target = ps_target(int(rng.integers(0, NUM_SHARDS)))
        severity = 2.5 + 2.5 * float(rng.random())
    return FaultSpec(kind, target, onset, duration, severity)


def _sched_fault(kind: FaultKind, rng: np.random.Generator) -> FaultSpec:
    # Strike shortly after one of the arrival waves (hour 0/24/48),
    # while the fleet is reliably busy.
    day = int(rng.integers(0, SCHED_ARRIVAL_DAYS))
    onset = day * 24.0 + 0.5 + 2.0 * float(rng.random())
    if kind is FaultKind.WORKER_CRASH:
        backoff = 2.0 + 4.0 * float(rng.random())
        return FaultSpec(kind, job_target("*"), onset, backoff, backoff)
    duration = 1.5 + 1.5 * float(rng.random())
    victims = float(rng.integers(2, 4))
    return FaultSpec(kind, fleet_target(), onset, duration, victims)


def scenario_specs(count: int, seed: int = DEFAULT_SEED) -> List[ScenarioSpec]:
    """Generate ``count`` seeded single-fault scenarios.

    Kinds cycle round-robin, so ``count >= 5`` covers all five; every
    other parameter (onset, duration, target, severity) is drawn from a
    per-scenario ``default_rng((seed, scenario_id))`` stream.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    specs = []
    for scenario_id in range(count):
        kind = _KIND_CYCLE[scenario_id % len(_KIND_CYCLE)]
        rng = np.random.default_rng((seed, scenario_id))
        if kind in SCHED_KINDS:
            fault = _sched_fault(kind, rng)
        else:
            fault = _sim_fault(kind, rng)
        specs.append(
            ScenarioSpec(
                scenario_id=scenario_id,
                plan=FaultPlan(
                    seed=seed * 100003 + scenario_id, faults=(fault,)
                ),
            )
        )
    return specs


@lru_cache(maxsize=1)
def _scenario_graph() -> ModelGraph:
    """A tiny dense model: two matmul layers, PS-friendly."""
    ops = (
        matmul_op("fc1", 512, 512, 512, batch=32, param_bytes=512 * 512 * 4),
        matmul_op("fc2", 512, 512, 256, batch=32, param_bytes=512 * 256 * 4),
    )
    return ModelGraph(
        name="faults-probe",
        domain="synthetic",
        forward=ops,
        batch_size=32,
        input_bytes_per_sample=4096.0,
    )


def _scenario_deployment() -> Deployment:
    return Deployment(
        architecture=Architecture.PS_WORKER,
        num_cnodes=NUM_REPLICAS,
        num_parameter_servers=NUM_SHARDS,
    )


def _link_rates(measurement) -> Dict[Tuple[int, str], float]:
    """Observed bytes/s per (server, channel) from the step timeline."""
    sums: Dict[Tuple[int, str], Tuple[float, float]] = {}
    for record in measurement.records:
        if "/" not in record.resource:
            continue
        server_name, channel = record.resource.split("/", 1)
        if channel not in ("nic", "pcie"):
            continue
        server = int(server_name.removeprefix("server"))
        volume, busy = sums.get((server, channel), (0.0, 0.0))
        sums[(server, channel)] = (
            volume + record.volume,
            busy + record.duration,
        )
    return {
        key: (volume / busy if busy > 0 else 0.0)
        for key, (volume, busy) in sums.items()
    }


def _run_sim_scenario(spec: ScenarioSpec) -> None:
    """Replay SIM_TICKS steps, emitting per-tick telemetry events.

    Only two distinct cluster states exist (healthy, fault-active), so
    the simulator runs twice; per-tick samples are the corresponding
    measurement under seeded multiplicative noise -- the shape a
    per-worker metrics agent exports.
    """
    obs = get_obs()
    graph = _scenario_graph()
    deployment = _scenario_deployment()
    options = SimulationOptions(jitter_sigma=0.0)
    fault = spec.fault

    healthy = simulate_step(graph, deployment, options=options)
    faulted = simulate_step(
        graph,
        deployment,
        options=options,
        faults=step_faults_at(spec.plan, fault.onset, NUM_SHARDS),
    )
    rates = {
        False: _link_rates(healthy),
        True: _link_rates(faulted),
    }
    total_traffic = 2.0 * graph.dense_trainable_bytes * NUM_REPLICAS
    even = (1.0,) * NUM_SHARDS
    loads = {
        False: shard_loads(total_traffic, even),
        True: shard_loads(
            total_traffic,
            step_faults_at(spec.plan, fault.onset, NUM_SHARDS).ps_shard_weights
            or even,
        ),
    }

    noise = np.random.default_rng((spec.plan.seed, 7))

    def sample(value: float) -> float:
        return float(value * noise.lognormal(mean=0.0, sigma=NOISE_SIGMA))

    for tick in range(SIM_TICKS):
        active = fault.active_at(tick)
        measurement = faulted if active else healthy
        for replica in range(NUM_REPLICAS):
            obs.event(
                "telemetry.step",
                level=DEBUG,
                tick=tick,
                replica=replica,
                compute_s=sample(measurement.replica_compute_s[replica]),
                step_s=sample(measurement.replica_step_s[replica]),
            )
        for server in range(NUM_REPLICAS):
            obs.event(
                "telemetry.link",
                level=DEBUG,
                tick=tick,
                server=server,
                nic_rate=sample(rates[active].get((server, "nic"), 0.0)),
                pcie_rate=sample(rates[active].get((server, "pcie"), 0.0)),
            )
        for shard in range(NUM_SHARDS):
            obs.event(
                "telemetry.ps_shard",
                level=DEBUG,
                tick=tick,
                shard=shard,
                bytes=sample(loads[active][shard]),
            )


def _sched_trace(seed: int) -> List:
    """A 60-job trace with arrivals compressed into three days."""
    from dataclasses import replace

    jobs = generate_trace(num_jobs=SCHED_TRACE_JOBS, seed=seed)
    return [
        replace(job, submit_day=index % SCHED_ARRIVAL_DAYS)
        for index, job in enumerate(jobs)
    ]


def _run_sched_scenario(spec: ScenarioSpec) -> Optional[str]:
    """Replay the compressed trace under injection; returns the crash
    victim's target label (harvested ground truth) when applicable."""
    obs = get_obs()
    jobs = _sched_trace(spec.plan.seed)
    outcome = run_schedule(
        jobs,
        Fleet(num_servers=SCHED_SERVERS),
        FifoPolicy(),
        faults=sched_faults_for(spec.plan),
    )
    for sample in outcome.telemetry.samples:
        obs.event(
            "telemetry.sched",
            level=DEBUG,
            hour=sample.hour,
            queue_depth=sample.queue_depth,
            running_jobs=sample.running_jobs,
            busy_gpus=sample.busy_gpus,
        )
    victims = [o.job.job_id for o in outcome.outcomes if o.retries > 0]
    if victims:
        return job_target(min(victims))
    return None


@dataclass(frozen=True)
class ScenarioResult:
    """One graded scenario."""

    scenario_id: int
    truth_kind: str
    truth_target: str
    truth_onset: float
    detected_kind: Optional[str]
    detected_target: Optional[str]
    detected_onset: Optional[float]
    kind_correct: bool
    target_correct: bool
    onset_correct: bool
    confidence: float
    num_events: int
    digest: str

    @property
    def localized(self) -> bool:
        """The acceptance bar: root cause (kind + target) nailed."""
        return self.kind_correct and self.target_correct


def _grade(
    spec: ScenarioSpec,
    truth_target: str,
    diagnosis: Diagnosis,
    num_events: int,
    digest: str,
) -> ScenarioResult:
    fault = spec.fault
    tolerance = (
        ONSET_TOLERANCE_SCHED if spec.is_sched else ONSET_TOLERANCE_SIM
    )
    kind_correct = diagnosis.kind is fault.kind
    target_correct = diagnosis.target == truth_target
    onset_correct = (
        diagnosis.onset is not None
        and abs(diagnosis.onset - fault.onset) <= tolerance
    )
    return ScenarioResult(
        scenario_id=spec.scenario_id,
        truth_kind=fault.kind.value,
        truth_target=truth_target,
        truth_onset=fault.onset,
        detected_kind=diagnosis.kind.value if diagnosis.kind else None,
        detected_target=diagnosis.target,
        detected_onset=diagnosis.onset,
        kind_correct=kind_correct,
        target_correct=target_correct,
        onset_correct=onset_correct,
        confidence=diagnosis.confidence,
        num_events=num_events,
        digest=digest,
    )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Inject, capture, diagnose and grade one scenario."""
    with capture() as sink:
        harvested: Optional[str] = None
        if spec.is_sched:
            harvested = _run_sched_scenario(spec)
        else:
            _run_sim_scenario(spec)
    events = canonical_events(sink.events)
    diagnosis = diagnose(events)
    truth_target = harvested if harvested is not None else spec.fault.target
    return _grade(
        spec,
        truth_target,
        diagnosis,
        num_events=len(events),
        digest=events_digest(sink.events),
    )


@dataclass(frozen=True)
class ScenarioReport:
    """A graded scenario suite."""

    seed: int
    results: Tuple[ScenarioResult, ...]

    @property
    def accuracy(self) -> float:
        """Fraction of scenarios with the root cause fully localized."""
        if not self.results:
            return 0.0
        return sum(r.localized for r in self.results) / len(self.results)

    @property
    def kind_accuracy(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.kind_correct for r in self.results) / len(self.results)

    @property
    def onset_accuracy(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.onset_correct for r in self.results) / len(self.results)

    def by_kind(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind (localized, total) counts."""
        counts: Dict[str, Tuple[int, int]] = {}
        for result in self.results:
            localized, total = counts.get(result.truth_kind, (0, 0))
            counts[result.truth_kind] = (
                localized + int(result.localized),
                total + 1,
            )
        return counts

    @property
    def digest(self) -> str:
        """SHA-256 over every scenario's digest and grade."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(
                json.dumps(
                    {
                        "id": result.scenario_id,
                        "digest": result.digest,
                        "localized": result.localized,
                        "onset_correct": result.onset_correct,
                    },
                    sort_keys=True,
                ).encode("utf-8")
            )
        return digest.hexdigest()

    def to_dict(self) -> Dict:
        """JSON-friendly report (the CLI's ``--output`` payload)."""
        return {
            "seed": self.seed,
            "scenarios": len(self.results),
            "accuracy": self.accuracy,
            "kind_accuracy": self.kind_accuracy,
            "onset_accuracy": self.onset_accuracy,
            "digest": self.digest,
            "by_kind": {
                kind: {"localized": localized, "total": total}
                for kind, (localized, total) in sorted(self.by_kind().items())
            },
            "results": [
                {
                    "scenario_id": r.scenario_id,
                    "truth_kind": r.truth_kind,
                    "truth_target": r.truth_target,
                    "truth_onset": r.truth_onset,
                    "detected_kind": r.detected_kind,
                    "detected_target": r.detected_target,
                    "detected_onset": r.detected_onset,
                    "localized": r.localized,
                    "onset_correct": r.onset_correct,
                    "confidence": r.confidence,
                    "digest": r.digest,
                }
                for r in self.results
            ],
        }


def score_suite(
    count: int = 25, seed: int = DEFAULT_SEED
) -> ScenarioReport:
    """Run and grade a full scenario suite."""
    obs = get_obs()
    results = []
    with obs.trace("faults.suite", count=count, seed=seed):
        for spec in scenario_specs(count, seed):
            results.append(run_scenario(spec))
            obs.metrics.counter("faults.scenarios").inc()
    report = ScenarioReport(seed=seed, results=tuple(results))
    obs.metrics.gauge("faults.accuracy").set(report.accuracy)
    return report
