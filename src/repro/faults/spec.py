"""Typed, seeded fault specifications.

A :class:`FaultPlan` is the ground truth of one fault scenario: which
:class:`FaultKind` strikes, where (a canonical target label), when (an
activation window) and how hard (a kind-specific severity).  The plan
is compiled down to the low-layer injection hooks
(:class:`repro.sim.StepFaults` / :class:`repro.sched.SchedFaults`) by
:mod:`repro.faults.injector`; the detection pipeline never sees it --
it works from :mod:`repro.obs` telemetry alone and is graded against
the plan afterwards.

Target labels are plain strings so they survive JSON round trips and
can be compared verbatim between ground truth and diagnosis:

========================  ======================================
label                     meaning
========================  ======================================
``replica:<i>``           flat replica index ``i`` (straggler)
``link:<server>:<kind>``  one server's ``pcie``/``nic``/``nvlink``
``ps:<shard>``            one parameter-server shard (hotspot)
``job:<id>``              one job (crash victim); ``job:*`` means
                          "whichever job the dead worker hits"
``fleet``                 the whole cluster (preemption storm)
========================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "SCHED_KINDS",
    "SIM_KINDS",
    "fleet_target",
    "job_target",
    "link_target",
    "parse_target",
    "ps_target",
    "replica_target",
]


class FaultKind(str, Enum):
    """The five injectable root causes."""

    STRAGGLER = "straggler"
    LINK_DEGRADATION = "link_degradation"
    WORKER_CRASH = "worker_crash"
    PS_HOTSPOT = "ps_hotspot"
    PREEMPTION_STORM = "preemption_storm"


#: Kinds injected into the step simulator (tick-indexed windows).
SIM_KINDS = (
    FaultKind.STRAGGLER,
    FaultKind.LINK_DEGRADATION,
    FaultKind.PS_HOTSPOT,
)

#: Kinds injected into the scheduling engine (hour-indexed windows).
SCHED_KINDS = (FaultKind.WORKER_CRASH, FaultKind.PREEMPTION_STORM)


def replica_target(replica: int) -> str:
    """The canonical label of one flat replica index (straggler)."""
    return f"replica:{replica}"


def link_target(server: int, kind: str) -> str:
    """The canonical label of one server's pcie/nic/nvlink channel."""
    return f"link:{server}:{kind}"


def ps_target(shard: int) -> str:
    """The canonical label of one parameter-server shard (hotspot)."""
    return f"ps:{shard}"


def job_target(job_id) -> str:
    """The canonical label of one job; ``job:*`` means any victim."""
    return f"job:{job_id}"


def fleet_target() -> str:
    """The canonical label of the whole cluster (preemption storm)."""
    return "fleet"


def parse_target(target: str) -> Tuple[str, ...]:
    """Split a canonical target label into its components."""
    return tuple(target.split(":"))


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Attributes:
        kind: The root cause.
        target: Canonical target label (see the module docstring).
        onset: Window start -- simulator ticks for :data:`SIM_KINDS`,
            engine hours for :data:`SCHED_KINDS`.
        duration: Window length, same unit as ``onset``.
        severity: Kind-specific magnitude:

            * ``STRAGGLER`` -- compute slowdown multiplier (``>= 1``);
            * ``LINK_DEGRADATION`` -- remaining bandwidth fraction
              (``0 < s <= 1``);
            * ``PS_HOTSPOT`` -- hot shard's traffic weight relative to
              the even share of 1 (``> 1``);
            * ``WORKER_CRASH`` -- retry backoff in hours;
            * ``PREEMPTION_STORM`` -- victims evicted per wave.
    """

    kind: FaultKind
    target: str
    onset: float
    duration: float
    severity: float

    def __post_init__(self) -> None:
        if self.onset < 0:
            raise ValueError("onset must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.kind is FaultKind.STRAGGLER and self.severity < 1.0:
            raise ValueError("straggler severity is a slowdown (>= 1)")
        if self.kind is FaultKind.LINK_DEGRADATION and not (
            0.0 < self.severity <= 1.0
        ):
            raise ValueError(
                "link severity is the remaining bandwidth fraction (0, 1]"
            )
        if self.kind is FaultKind.PS_HOTSPOT and self.severity <= 1.0:
            raise ValueError("hotspot severity is a relative weight (> 1)")
        if self.kind is FaultKind.WORKER_CRASH and self.severity <= 0:
            raise ValueError("crash severity is a backoff in hours (> 0)")
        if self.kind is FaultKind.PREEMPTION_STORM and self.severity < 1:
            raise ValueError("storm severity is victims per wave (>= 1)")

    def active_at(self, t: float) -> bool:
        """Whether the fault is live at tick/hour ``t``."""
        return self.onset <= t < self.onset + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """The full ground truth of one scenario: seed plus fault set."""

    seed: int
    faults: Tuple[FaultSpec, ...]

    @property
    def sim_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind in SIM_KINDS)

    @property
    def sched_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind in SCHED_KINDS)
