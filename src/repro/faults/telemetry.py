"""Anomaly telemetry: the symptom stream the detector is allowed to see.

Faults are injected below (sim/sched); their *symptoms* surface here as
structured :mod:`repro.obs` events.  Nothing in the stream names the
injected cause -- the detector works from exactly what a metrics agent
on a real cluster would export:

======================  ============================================
kind                    fields
======================  ============================================
``telemetry.step``      ``tick``, ``replica``, ``compute_s``,
                        ``step_s`` -- per-replica step timings
``telemetry.link``      ``tick``, ``server``, ``nic_rate``,
                        ``pcie_rate`` -- observed bytes/s per channel
``telemetry.ps_shard``  ``tick``, ``shard``, ``bytes`` -- per-shard
                        traffic counters
``telemetry.sched``     ``hour``, ``queue_depth``, ``running_jobs``,
                        ``busy_gpus`` -- fleet state samples
``sched.job_failed``    ``job_id``, ``hour``, ``retries``,
                        ``backoff_hours`` -- emitted by the engine
``sched.preempted``     ``job_id``, ``hour``, ``num_cnodes`` --
                        emitted by the engine
======================  ============================================

:func:`capture` attaches an in-memory sink for the duration of a
scenario run; :func:`canonical_events` strips the wall-clock ``ts`` /
``level`` fields and filters to the kinds above, giving the
byte-identical canonical stream that determinism tests and report
digests are computed over.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Tuple

from ..obs import MemorySink, get_obs

__all__ = [
    "TELEMETRY_KINDS",
    "canonical_events",
    "capture",
    "events_digest",
]

#: Event kinds that constitute the detector-visible symptom stream.
TELEMETRY_KINDS = (
    "telemetry.step",
    "telemetry.link",
    "telemetry.ps_shard",
    "telemetry.sched",
    "sched.job_failed",
    "sched.preempted",
)


@contextmanager
def capture() -> Iterator[MemorySink]:
    """Attach a :class:`MemorySink` to the process obs for a scenario."""
    obs = get_obs()
    sink = MemorySink()
    obs.add_sink(sink)
    try:
        yield sink
    finally:
        if sink in obs.sinks:
            obs.sinks.remove(sink)


def canonical_events(
    events: Iterable[Dict[str, Any]]
) -> Tuple[Dict[str, Any], ...]:
    """The telemetry stream in canonical, reproducible form.

    Drops the wall-clock ``ts`` and the ``level`` tag (neither carries
    signal), keeps emission order (which is deterministic under a fixed
    seed), and filters to :data:`TELEMETRY_KINDS`.
    """
    wanted = set(TELEMETRY_KINDS)
    canonical: List[Dict[str, Any]] = []
    for event in events:
        if event.get("kind") not in wanted:
            continue
        canonical.append(
            {k: v for k, v in event.items() if k not in ("ts", "level")}
        )
    return tuple(canonical)


def events_digest(events: Iterable[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical stream (scenario determinism check)."""
    digest = hashlib.sha256()
    for event in canonical_events(events):
        digest.update(
            json.dumps(event, sort_keys=True, default=str).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()
