"""Architecture advisor: the Sec. VI selection story as a tool.

Given a handful of representative jobs (small dense, huge dense, huge
sparse-embedding, I/O-hungry), rank every feasible deployment by
estimated throughput and explain the bottleneck of each.

Run with::

    python examples/architecture_advisor.py
"""

from repro.core import (
    Architecture,
    WorkloadFeatures,
    pai_default_hardware,
    recommend_architecture,
)


def job(name, **kw):
    defaults = dict(
        name=name,
        architecture=Architecture.PS_WORKER,
        num_cnodes=16,
        batch_size=256,
        flop_count=2e12,
        memory_access_bytes=30e9,
        input_bytes=20e6,
        weight_traffic_bytes=400e6,
        dense_weight_bytes=400e6,
    )
    defaults.update(kw)
    return WorkloadFeatures(**defaults)


SCENARIOS = [
    job("small dense CNN", weight_traffic_bytes=200e6, dense_weight_bytes=200e6),
    job(
        "large dense transformer",
        weight_traffic_bytes=6e9,
        dense_weight_bytes=6e9,
        flop_count=8e12,
    ),
    job(
        "huge-embedding recommender",
        dense_weight_bytes=300e6,
        embedding_weight_bytes=150e9,
        weight_traffic_bytes=2.5e9,
        embedding_traffic_bytes=2.2e9,
        memory_access_bytes=80e9,
        flop_count=0.3e12,
    ),
    job(
        "input-hungry CTR model",
        weight_traffic_bytes=100e6,
        dense_weight_bytes=100e6,
        input_bytes=600e6,
        flop_count=0.5e12,
    ),
]


def main() -> None:
    hardware = pai_default_hardware()
    for features in SCENARIOS:
        print(f"\n=== {features.name} ({features.num_cnodes} cNodes) ===")
        ranked = recommend_architecture(features, hardware)
        for rank, rec in enumerate(ranked, start=1):
            marker = "=>" if rank == 1 else "  "
            print(
                f" {marker} {rank}. {str(rec.plan.architecture):18s} "
                f"x{rec.plan.num_cnodes:<3d} "
                f"{rec.throughput:12.0f} samples/s   "
                f"step {rec.step_time * 1e3:8.1f} ms   "
                f"bottleneck: {rec.bottleneck}"
            )


if __name__ == "__main__":
    main()
