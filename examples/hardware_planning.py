"""Hardware planning with the analytical model (Sec. III-C2 / Fig. 11).

Answers the provisioning questions the paper poses: what do faster
networks, faster GPUs or faster memory buy for each class of workload
-- and how the answer flips once PS/Worker jobs move to AllReduce-Local.

Run with::

    python examples/hardware_planning.py
"""

from repro.analysis.context import ps_worker_features, trace_features
from repro.core import Architecture, pai_default_hardware, sweep_all_resources
from repro.core.projection import project_to_allreduce_local
from repro.trace import generate_trace


def show_panel(title, population, hardware) -> None:
    print(f"\n{title} ({len(population)} jobs)")
    series_by_resource = sweep_all_resources(population, hardware)
    for resource, series in series_by_resource.items():
        points = "  ".join(
            f"{p.normalized_value:4.2g}x->{p.average_speedup:5.3f}"
            for p in series.points
        )
        print(f"  {resource:10s} {points}   (per-unit {series.sensitivity:.3f})")
    winner = max(series_by_resource.values(), key=lambda s: s.sensitivity)
    print(f"  => invest in: {winner.resource}")


def main() -> None:
    hardware = pai_default_hardware()
    jobs = tuple(generate_trace(num_jobs=8000))

    show_panel(
        "1w1g workloads",
        trace_features(jobs, Architecture.SINGLE)[:2000],
        hardware,
    )
    show_panel(
        "1wng workloads",
        trace_features(jobs, Architecture.LOCAL_CENTRALIZED),
        hardware,
    )
    ps = ps_worker_features(jobs)[:2000]
    show_panel("PS/Worker workloads", ps, hardware)
    show_panel(
        "the same jobs, ported to AllReduce-Local",
        [project_to_allreduce_local(f) for f in ps],
        hardware,
    )
    print(
        "\nNote the bottleneck shift: the PS population wants Ethernet, "
        "but once ported to NVLink-backed AllReduce it wants GPU memory "
        "bandwidth (Fig. 11c vs 11d)."
    )

    # Bonus: is a fabric upgrade ever a substitute for porting?
    from repro.core import crossover_distribution

    results = crossover_distribution(ps[:300], hardware)
    always = sum(1 for r in results if r.always_better)
    print(
        f"\nfabric-vs-port crossover over {len(results)} PS jobs: "
        f"{always} prefer the NVLink port at ANY Ethernet speed; the "
        f"rest have a finite break-even bandwidth."
    )


if __name__ == "__main__":
    main()
