"""PEARL deep dive (Sec. IV-C / Fig. 13d): training a 54 GB-embedding
GCN that fits no single GPU.

Walks through the decision the paper motivates: the model cannot use
AllReduce (weight-replica only), PS/Worker drowns in Ethernet traffic,
and PEARL -- partitioned embeddings over NVLink, replicated dense
weights -- recovers the throughput.

Run with::

    python examples/pearl_vs_ps.py
"""

from repro.core import (
    Architecture,
    TABLE_VI_EFFICIENCIES,
    estimate_breakdown,
    testbed_v100_hardware,
)
from repro.graphs import Deployment, build_gcn, features_for
from repro.sim import plan_pearl, simulate_step


def main() -> None:
    hardware = testbed_v100_hardware()
    gcn = build_gcn()
    efficiency = TABLE_VI_EFFICIENCIES["GCN"]

    print(
        f"GCN: {gcn.dense_weight_bytes / 1e6:.0f} MB dense, "
        f"{gcn.embedding_weight_bytes / 1e9:.1f} GB embeddings, "
        f"{gcn.embedding_access_bytes / 1e9:.2f} GB of rows touched per step"
    )

    # 1. AllReduce is impossible: the replica would not fit.
    capacity = hardware.gpu.memory_capacity
    print(
        f"\nAllReduce replica needs {gcn.weight_bytes / 1e9:.1f} GB per GPU; "
        f"capacity is {capacity / 1e9:.0f} GB -> not trainable"
    )

    # 2. PEARL partitions the table across 8 workers.
    partition = plan_pearl(gcn, num_workers=8)
    print(
        f"PEARL shard: {partition.shard_bytes / 1e9:.2f} GB per GPU "
        f"(fits: {partition.fits_in(capacity)})"
    )

    # 3. Compare the PS/Worker estimate against the PEARL measurement.
    ps_estimate = estimate_breakdown(
        features_for(gcn, Deployment(Architecture.PS_WORKER, 8)), hardware
    )
    pearl = simulate_step(
        gcn, Deployment(Architecture.PEARL, 8), hardware, efficiency
    )
    ps_comm = ps_estimate.fractions()["weight"]
    pearl_comm = pearl.weight_time / pearl.serial_total
    print(
        f"\nPS/Worker (estimated): {ps_estimate.total:.3f}s per step, "
        f"{ps_comm:.0%} communication"
    )
    print(
        f"PEARL (measured):      {pearl.serial_total:.3f}s per step, "
        f"{pearl_comm:.0%} communication"
    )
    print(f"PEARL speedup:         {ps_estimate.total / pearl.serial_total:.1f}x")

    # 4. PEARL scalability in worker count (2 workers cannot host the
    # 27 GB shards, so the fleet starts at 4).
    print("\nPEARL throughput scaling (samples/s):")
    for workers in (4, 6, 8):
        measurement = simulate_step(
            gcn, Deployment(Architecture.PEARL, workers), hardware, efficiency
        )
        throughput = workers * gcn.batch_size / measurement.serial_total
        print(f"  {workers} workers: {throughput:10.0f}")


if __name__ == "__main__":
    main()
