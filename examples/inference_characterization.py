"""Inference characterization (the paper's Sec. VIII future work).

Applies the same analytical methodology to *serving*: per-request
latency breakdowns for the case-study models, the batching
latency/throughput trade-off, and SLO-constrained batch selection.

Run with::

    python examples/inference_characterization.py
"""

from repro.core import testbed_v100_hardware
from repro.graphs import all_case_studies
from repro.inference import (
    batch_sweep,
    estimate_latency,
    inference_features_for,
    max_batch_within_slo,
)


def main() -> None:
    hardware = testbed_v100_hardware()
    graphs = all_case_studies()

    print("per-request latency at batch 1 (V100, 70% efficiency):")
    for name, graph in graphs.items():
        serving = inference_features_for(graph, batch_size=1)
        if serving.resident_weight_bytes > hardware.gpu.memory_capacity:
            print(
                f"  {name:16s} does not fit one GPU "
                f"({serving.resident_weight_bytes / 1e9:.0f} GB of weights) "
                "-- needs partitioned serving"
            )
            continue
        breakdown = estimate_latency(serving, hardware)
        print(
            f"  {name:16s} {breakdown.total * 1e3:8.2f} ms   "
            f"bottleneck: {breakdown.bottleneck}"
        )

    print("\nResNet50 batching trade-off:")
    resnet = inference_features_for(graphs["ResNet50"], batch_size=1)
    for row in batch_sweep(resnet, hardware, batches=[1, 4, 16, 64, 256]):
        print(
            f"  batch {row['batch']:4d}: {row['latency_s'] * 1e3:8.2f} ms, "
            f"{row['throughput_rps']:8.0f} req/s ({row['bottleneck']})"
        )

    for slo_ms in (10, 50, 200):
        best = max_batch_within_slo(resnet, hardware, latency_slo=slo_ms / 1e3)
        print(f"  largest batch within a {slo_ms} ms SLO: {best}")


if __name__ == "__main__":
    main()
