"""Cluster occupancy: schedule the trace onto a GPU fleet.

Feeds the synthetic trace through the multi-job scheduler, reproduces
the Sec. II-A2 claim that distributed training consumes more than 85%
of compute resources, and renders a per-step timeline of one simulated
job for good measure.

Run with::

    python examples/cluster_occupancy.py
"""

from repro.core import Architecture, TABLE_VI_EFFICIENCIES, testbed_v100_hardware
from repro.graphs import Deployment, build_resnet50
from repro.sim import ClusterScheduler, render_timeline, simulate_step
from repro.trace import generate_trace


def main() -> None:
    jobs = generate_trace(num_jobs=3000)
    scheduler = ClusterScheduler(num_servers=512, gpus_per_server=8)
    placeable = [
        j
        for j in jobs
        if not (
            j.workload_type is Architecture.PS_WORKER and j.num_cnodes > 512
        )
    ]
    result = scheduler.schedule(placeable)

    print(
        f"scheduled {len(result.executions)} jobs on "
        f"{scheduler.total_gpus} GPUs "
        f"({len(result.rejected)} rejected as oversized)"
    )
    print(f"makespan: {result.makespan_hours / 24:.1f} days")
    print(f"average queueing delay: {result.average_wait_hours:.2f} h")
    print(f"cluster utilization: {result.utilization():.1%}")
    print(
        f"distributed-training resource share: "
        f"{result.distributed_resource_share():.1%} (paper: >85%)"
    )

    print("\nGPU-hours by workload type:")
    by_type = result.gpu_hours_by_type()
    total = sum(by_type.values())
    for arch, hours in sorted(by_type.items(), key=lambda kv: -kv[1]):
        print(f"  {str(arch):18s} {hours:12.0f} GPU-h  ({hours / total:.1%})")

    print("\none simulated ResNet50 step on the testbed (timeline view):")
    measurement = simulate_step(
        build_resnet50(),
        Deployment(Architecture.ALLREDUCE_LOCAL, 4),
        testbed_v100_hardware(),
        TABLE_VI_EFFICIENCIES["ResNet50"],
    )
    print(render_timeline(measurement, width=64, max_resources=7))


if __name__ == "__main__":
    main()
