"""Quickstart: model one training job and explore its deployment options.

Builds a ResNet50-class workload by hand, estimates its execution-time
breakdown under the Table I cluster, and asks the questions the paper's
framework answers: where does the time go, does AllReduce-Local help,
and what does a 100 Gbps network buy?

Run with::

    python examples/quickstart.py
"""

from repro import (
    Architecture,
    WorkloadFeatures,
    estimate_breakdown,
    pai_default_hardware,
    projection_speedups,
)
from repro.core.units import format_time, gbps


def main() -> None:
    hardware = pai_default_hardware()

    # A ResNet50-class job on 16 PS/Worker cNodes (features per Table V).
    job = WorkloadFeatures(
        name="resnet50-class",
        architecture=Architecture.PS_WORKER,
        num_cnodes=16,
        batch_size=64,
        flop_count=1.56e12,
        memory_access_bytes=31.9e9,
        input_bytes=38e6,
        weight_traffic_bytes=357e6,
        dense_weight_bytes=204e6,
    )

    # 1. Where does one training step spend its time?
    breakdown = estimate_breakdown(job, hardware)
    print(f"step time estimate: {format_time(breakdown.total)}")
    for component, share in breakdown.fractions().items():
        print(f"  {component:14s} {share:6.1%}")

    # 2. Would AllReduce-Local (NVLink) help?
    result = projection_speedups(job, Architecture.ALLREDUCE_LOCAL, hardware)
    print(
        f"\nAllReduce-Local projection: single-cNode speedup "
        f"{result.single_cnode_speedup:.2f}x, throughput speedup "
        f"{result.throughput_speedup:.2f}x "
        f"({job.num_cnodes} -> {result.projected.num_cnodes} cNodes)"
    )

    # 3. What does a 100 Gbps fabric buy for the PS deployment?
    upgraded = hardware.with_resource("ethernet", gbps(100))
    faster = estimate_breakdown(job, upgraded)
    print(
        f"\n25 -> 100 Gbps Ethernet: {format_time(breakdown.total)} -> "
        f"{format_time(faster.total)} "
        f"({breakdown.total / faster.total:.2f}x)"
    )


if __name__ == "__main__":
    main()
