"""Cluster-level characterization: the Sec. III workflow end to end.

Generates the calibrated synthetic PAI trace and reproduces the
collective analysis: workload constitution, execution-time breakdowns,
the AllReduce projection study and the hardware-evolution sweeps.

Run with::

    python examples/cluster_characterization.py [num_jobs]
"""

import sys

from repro.analysis import fig05_composition, fig07_breakdown, fig09_allreduce
from repro.analysis import fig11_hardware
from repro.analysis.calibration_report import run as calibration_report
from repro.trace import generate_trace


def main(num_jobs: int = 12000) -> None:
    print(f"generating a {num_jobs}-job synthetic PAI trace ...")
    jobs = tuple(generate_trace(num_jobs=num_jobs))

    for experiment in (
        fig05_composition,
        fig07_breakdown,
        fig09_allreduce,
        fig11_hardware,
    ):
        print()
        print(experiment.run(jobs).render())

    print()
    print(calibration_report(jobs).render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12000)
