"""Cluster scheduling with pluggable policies and model-predicted
runtimes (the repro.sched subsystem).

Replays a stressed slice of the calibrated trace through a fleet of
8-GPU servers under four disciplines -- FIFO, shortest-predicted-job
first, EASY backfill, priority-with-preemption -- then runs the fleet
what-if: re-deploy the profitable PS/Worker jobs as AllReduce-Local
and see whether cluster-wide queueing delay shrinks.

Run with::

    python examples/scheduling_policies.py
"""

from dataclasses import replace

from repro.analysis.context import default_trace
from repro.core import pai_default_hardware
from repro.sched import (
    BackfillPolicy,
    FifoPolicy,
    Fleet,
    ModelRuntimePredictor,
    PriorityPolicy,
    SjfPolicy,
    run_projection_what_if,
    run_schedule,
)


def main() -> None:
    hardware = pai_default_hardware()
    # A 600-job slice with arrivals compressed 4x: enough contention
    # that the policy choice matters.
    jobs = [
        replace(job, submit_day=job.submit_day // 4)
        for job in default_trace(600)
    ]

    # Runtimes are model predictions: analytical step time x a per-job
    # step budget, deterministic per job id.
    predictor = ModelRuntimePredictor(hardware=hardware)
    durations = predictor.durations(jobs)

    print("policy     mean wait   p90 wait   utilization   preemptions")
    for policy in (
        FifoPolicy(),
        SjfPolicy(),
        BackfillPolicy(),
        PriorityPolicy(),
    ):
        outcome = run_schedule(
            jobs, Fleet(num_servers=16), policy, durations=durations
        )
        print(
            f"{outcome.policy:<9}  {outcome.mean_queueing_delay_hours:7.2f} h"
            f"  {outcome.p90_queueing_delay_hours:7.2f} h"
            f"  {outcome.utilization():10.2f}"
            f"  {outcome.total_preemptions:10d}"
        )

    # Telemetry rides along on every run: utilization, fragmentation,
    # queue depth and an energy proxy from active GPU-hours.
    fifo = run_schedule(
        jobs, Fleet(num_servers=16), FifoPolicy(), durations=durations
    )
    telemetry = fifo.telemetry
    print(
        f"\nFIFO telemetry: peak queue {telemetry.peak_queue_depth}, "
        f"peak fragmentation {telemetry.peak_fragmentation:.2f}, "
        f"{telemetry.active_gpu_hours:.0f} active GPU-hours "
        f"(~{telemetry.energy_kwh() / 1000:.1f} MWh)"
    )

    # The Sec. III-C projection, fleet-wide: would re-deploying the
    # PS/Worker jobs as AllReduce-Local shrink queueing delay?
    report = run_projection_what_if(
        jobs, num_servers=16, hardware=hardware, predictor=predictor
    )
    print(
        f"\nwhat-if: projected {report.projected_jobs} of "
        f"{report.considered_jobs} PS/Worker jobs to AllReduce-Local"
    )
    print(
        f"mean queueing delay "
        f"{report.baseline.mean_queueing_delay_hours:.2f} h -> "
        f"{report.projected.mean_queueing_delay_hours:.2f} h "
        f"({100 * report.queueing_delay_reduction:+.1f}% better), "
        f"{report.gpu_hours_saved:.0f} GPU-hours freed"
    )


if __name__ == "__main__":
    main()
