"""The Sec. IV case studies: build, profile, validate, optimize.

Builds the six production models of Table IV, simulates one training
step of each on the V100 testbed with its measured (Table VI)
efficiencies, validates the analytical estimate against the measured
breakdown (Fig. 12), and applies the mixed-precision and XLA passes
(Fig. 13).

Run with::

    python examples/case_studies.py
"""

from repro.core import TABLE_VI_EFFICIENCIES, estimate_breakdown, testbed_v100_hardware
from repro.graphs import all_case_studies, case_study_deployments, features_for
from repro.optim import apply_passes, mixed_precision_pass, xla_fusion_pass
from repro.sim import simulate_step


def main() -> None:
    hardware = testbed_v100_hardware()
    graphs = all_case_studies()
    deployments = case_study_deployments()

    print(f"{'model':16s} {'deployment':18s} {'estimated':>10s} "
          f"{'measured':>10s} {'diff':>7s}")
    for name, graph in graphs.items():
        deployment = deployments[name]
        efficiency = TABLE_VI_EFFICIENCIES[name]
        measurement = simulate_step(graph, deployment, hardware, efficiency)
        estimate = estimate_breakdown(features_for(graph, deployment), hardware)
        diff = (estimate.total - measurement.serial_total) / measurement.serial_total
        print(
            f"{name:16s} {str(deployment.architecture):18s} "
            f"{estimate.total:9.3f}s {measurement.serial_total:9.3f}s "
            f"{diff:+7.1%}"
        )

    # Optimization passes on the BERT-class model (Fig. 13a).
    print("\noptimization passes on BERT:")
    bert = graphs["BERT"]
    deployment = deployments["BERT"]
    efficiency = TABLE_VI_EFFICIENCIES["BERT"]
    base = simulate_step(bert, deployment, hardware, efficiency).serial_total
    for label, passes in (
        ("mixed precision", [mixed_precision_pass]),
        ("XLA fusion", [xla_fusion_pass]),
        ("MP + XLA", [mixed_precision_pass, xla_fusion_pass]),
    ):
        optimized = apply_passes(bert, passes)
        step = simulate_step(
            optimized, deployment, hardware, efficiency
        ).serial_total
        print(f"  {label:16s} {step:6.3f}s  ({base / step:.2f}x)")

    # XLA on the memory-efficiency-starved Speech model (Fig. 13b).
    speech = graphs["Speech"]
    deployment = deployments["Speech"]
    efficiency = TABLE_VI_EFFICIENCIES["Speech"]
    base_m = simulate_step(speech, deployment, hardware, efficiency)
    fused_m = simulate_step(
        xla_fusion_pass(speech), deployment, hardware, efficiency
    )
    print(
        f"\nXLA on Speech: element-wise "
        f"{base_m.memory_time / fused_m.memory_time:.2f}x, end-to-end "
        f"{base_m.serial_total / fused_m.serial_total:.2f}x"
    )


if __name__ == "__main__":
    main()
